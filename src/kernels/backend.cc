#include "kernels/backend.h"

#include <cstdio>
#include <cstdlib>

#include "kernels/kernels_internal.h"
#include "obs/obs.h"

namespace alem {
namespace kernels {
namespace {

const KernelOps* OpsFor(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &internal::kScalarOps;
    case Backend::kAvx2:
#if defined(ALEM_KERNELS_HAVE_AVX2)
      return &internal::kAvx2Ops;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

// Most specialized available backend; what "auto" resolves to.
Backend BestAvailable() {
  if (BackendAvailable(Backend::kAvx2)) return Backend::kAvx2;
  return Backend::kScalar;
}

bool ParseName(std::string_view name, Backend* out) {
  if (name == "scalar") {
    *out = Backend::kScalar;
    return true;
  }
  if (name == "avx2") {
    *out = Backend::kAvx2;
    return true;
  }
  return false;
}

struct ActiveState {
  Backend backend;
  const KernelOps* ops;
};

// The environment knob is forgiving (warn + fall back to auto) so that a
// per-backend test matrix written on a SIMD-capable host still runs — as
// scalar — on hardware without the backend. The CLI flag goes through
// SetBackend instead, which treats the same situations as hard errors.
ActiveState ResolveFromEnv() {
  const char* env = std::getenv("ALEM_KERNEL_BACKEND");
  const std::string_view name = env == nullptr ? std::string_view("auto")
                                               : std::string_view(env);
  Backend backend = BestAvailable();
  Backend requested;
  if (name != "auto") {
    if (!ParseName(name, &requested)) {
      std::fprintf(stderr,
                   "warning: ALEM_KERNEL_BACKEND=%.*s is not a known kernel "
                   "backend; using auto (%s)\n",
                   static_cast<int>(name.size()), name.data(),
                   BackendToName(backend).data());
    } else if (!BackendAvailable(requested)) {
      std::fprintf(stderr,
                   "warning: kernel backend %.*s is unavailable on this "
                   "host; using auto (%s)\n",
                   static_cast<int>(name.size()), name.data(),
                   BackendToName(backend).data());
    } else {
      backend = requested;
    }
  }
  return {backend, OpsFor(backend)};
}

ActiveState& State() {
  static ActiveState state = ResolveFromEnv();
  return state;
}

}  // namespace

std::string_view BackendToName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "scalar";
}

const KernelOps& Active() { return *State().ops; }

Backend ActiveBackend() { return State().backend; }

std::string_view BackendName() { return BackendToName(ActiveBackend()); }

bool BackendAvailable(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(ALEM_KERNELS_HAVE_AVX2)
      // Compiled in; dispatch only where the CPU can actually run it.
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

std::vector<std::string_view> AvailableBackendNames() {
  std::vector<std::string_view> names;
  names.push_back(BackendToName(Backend::kScalar));
  if (BackendAvailable(Backend::kAvx2)) {
    names.push_back(BackendToName(Backend::kAvx2));
  }
  return names;
}

bool SetBackend(std::string_view name, std::string* error) {
  Backend backend;
  if (name == "auto") {
    backend = BestAvailable();
  } else if (!ParseName(name, &backend)) {
    if (error != nullptr) {
      *error = "unknown kernel backend '" + std::string(name) +
               "' (expected auto, scalar, or avx2)";
    }
    return false;
  } else if (!BackendAvailable(backend)) {
    if (error != nullptr) {
      *error = "kernel backend '" + std::string(name) +
               "' is not available on this host";
    }
    return false;
  }
  State() = {backend, OpsFor(backend)};
  return true;
}

void StampBackendGauge() {
  obs::MetricsRegistry::Global()
      .GetGauge("kernels.backend")
      .Set(static_cast<double>(static_cast<int>(ActiveBackend())));
}

}  // namespace kernels
}  // namespace alem
