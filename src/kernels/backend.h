// Runtime-dispatched SIMD kernel backends for the framework's hot inner
// loops.
//
// PR 4/5 restructured the two scoring hot paths — the similarity
// EvaluateChunk kernels and the per-learner batch kernels (blocked SVM
// GEMV, fused NN forward pass) — into chunked, scratch-hoisted loops.
// This layer makes those inner loops pluggable: one kernel API with a
// portable scalar reference implementation (always compiled, always the
// correctness baseline) and optional SIMD implementations selected at
// runtime from CPU capabilities.
//
// Equivalence contract (enforced by tests/kernel_backend_test.cc and
// report_gate.sh stage 7; see docs/kernels.md):
//   * Every kernel in every backend currently registered is REORDER-FREE:
//     per output value it performs the same arithmetic operations in the
//     same order and rounding as the scalar reference, so results are
//     bitwise-identical. The AVX2 kernels vectorize across independent
//     outputs (rows, units, candidate positions), never across a single
//     floating-point accumulation, and their translation units are built
//     with -ffp-contract=off so no FMA contraction can change rounding.
//   * A future backend MAY register a reassociating kernel (e.g. an
//     FMA-tiled GEMV); such kernels are ULP-BOUNDED instead of bitwise and
//     must document their tolerance in docs/kernels.md. The differential
//     harness carries a ULP comparator for exactly that case — today every
//     kernel passes it with a tolerance of 0 ULP.
//
// Selection: --kernel-backend=auto|scalar|avx2 (alem_cli, strict: an
// unavailable explicit choice is an error) or the ALEM_KERNEL_BACKEND
// environment knob (bench binaries and tests, forgiving: an unavailable
// choice warns on stderr and falls back to auto so a test matrix written
// on an AVX2 host still runs on older hardware). "auto" picks the best
// available backend and by construction never selects an unavailable one.
// The active backend is stamped into every RunReport (config.kernel_backend)
// and the "kernels.backend" gauge, so the regression gate can assert which
// backend actually ran.

#ifndef ALEM_KERNELS_BACKEND_H_
#define ALEM_KERNELS_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace alem {
namespace kernels {

// Row-block width of the SVM margin GEMV (ml/linear_svm.cc feeds blocks of
// at most this many rows to svm_margin_block).
inline constexpr size_t kSvmMarginBlock = 8;

// Dispatch table: one function pointer per hot inner loop. All pointers are
// always non-null; nn_wants_transpose tells the NN batch path whether to
// hand the kernels a [in x out] transposed copy of each layer's weights
// (built once per MarginBatch call) alongside the row-major original.
struct KernelOps {
  const char* name;

  // ---- similarity kernels (sim/edit_based.cc, via sim/token_based.cc) ----

  // Jaro match scan: first index j in [lo, hi) with b[j] == c and
  // matched[j] == 0; returns hi when no such j exists. Exact (integer)
  // semantics, so every backend is bitwise-equivalent.
  size_t (*jaro_scan)(const char* b, const uint8_t* matched, size_t lo,
                      size_t hi, char c);

  // One Levenshtein DP row update over columns 0..m:
  //   cur[0] = row_index
  //   cur[j] = min(prev[j] + 1, cur[j-1] + 1,
  //                prev[j-1] + (a_char == b[j-1] ? 0 : 1))
  // `prev` and `cur` hold m+1 ints; `b` holds m chars. Exact (integer)
  // semantics — the AVX2 version decomposes the column-carried dependency
  // into a vectorized prefix-min, which is exact because integer min is
  // associative.
  void (*lev_row)(const int* prev, int* cur, const char* b, size_t m,
                  char a_char, int row_index);

  // ---- ml kernels ----

  // Blocked SVM margin GEMV: out[r] = bias + sum_j w[j] * x[r][j] for
  // r < nrows (nrows <= kSvmMarginBlock), with each row's accumulation in
  // ascending j, one multiply + one add per step — the scalar Margin()
  // order, so results are bitwise-identical across backends.
  void (*svm_margin_block)(const double* w, size_t d, double bias,
                           const float* const* x, size_t nrows, double* out);

  // When true, NeuralNetwork::MarginBatch builds a [in x out] transposed
  // weight copy per layer per call and passes it as `wt` below (the AVX2
  // kernels vectorize across units, which needs unit-contiguous weights);
  // when false `wt` may be null.
  bool nn_wants_transpose;

  // NN hidden-layer affine for one example: z[o] = bias[o] +
  // sum_j w[o*in + j] * x[j] for o < out, each z[o] accumulated in
  // ascending j (bitwise-identical to the scalar forward pass). The f32
  // variant reads the input row as floats (layer 0), the f64 variant as
  // doubles (hidden activations).
  void (*nn_affine_f32)(const double* w, const double* wt, const double* bias,
                        size_t in, size_t out, const float* x, double* z);
  void (*nn_affine_f64)(const double* w, const double* wt, const double* bias,
                        size_t in, size_t out, const double* x, double* z);
};

enum class Backend : int {
  kScalar = 0,
  kAvx2 = 1,
};

// Stable lowercase name ("scalar", "avx2").
std::string_view BackendToName(Backend backend);

// The active dispatch table. First use resolves ALEM_KERNEL_BACKEND (or
// "auto" when unset); afterwards this is a single pointer load, so hot
// loops may call it per chunk without caring.
const KernelOps& Active();

Backend ActiveBackend();
std::string_view BackendName();  // == BackendToName(ActiveBackend())

// True when `backend` is compiled in AND supported by this CPU (checked
// via __builtin_cpu_supports at first use). kScalar is always available.
bool BackendAvailable(Backend backend);

// Names of all available backends, scalar first, in dispatch-preference
// order (the last entry is what "auto" resolves to... reversed: "auto"
// picks the LAST/most specialized entry).
std::vector<std::string_view> AvailableBackendNames();

// Selects the backend by name: "auto", "scalar", or "avx2". Returns false
// (active backend unchanged) with a message in *error when the name is
// unknown or the backend is unavailable on this CPU; error may be null.
// Not thread-safe against concurrently running kernels — call it at
// startup or between runs (tests/benches do the latter).
bool SetBackend(std::string_view name, std::string* error);

// Publishes the active backend as the "kernels.backend" gauge (numeric
// Backend enum value: 0 = scalar, 1 = avx2). Called by the report builders
// right before the metrics snapshot so the gauge lands in every RunReport.
void StampBackendGauge();

}  // namespace kernels
}  // namespace alem

#endif  // ALEM_KERNELS_BACKEND_H_
