// AVX2 kernels. This translation unit is the only one compiled with
// -mavx2 (see src/kernels/CMakeLists.txt); nothing here may be executed
// unless __builtin_cpu_supports("avx2") passed in backend.cc.
//
// Every kernel below is REORDER-FREE with respect to the scalar reference
// (kernel_scalar.cc): the integer kernels compute the same exact values,
// and the floating-point kernels vectorize across independent accumulators
// (rows for the SVM GEMV, units for the NN affine) so each accumulator
// still sees its terms in ascending j with one rounded multiply and one
// rounded add per term. The TU is additionally built with -ffp-contract=off
// (and WITHOUT -mfma) so the compiler cannot fuse that multiply-add pair
// into a single differently-rounded FMA. Net effect: bitwise-identical
// outputs, verified by tests/kernel_backend_test.cc and the per-backend
// golden-baseline replay in report_gate.sh stage 7.

#include <immintrin.h>

#include <algorithm>
#include <climits>
#include <cstddef>
#include <cstdint>

#include "kernels/kernels_internal.h"

namespace alem {
namespace kernels {
namespace internal {
namespace {

// ---- jaro_scan ---------------------------------------------------------
//
// First-match scan: 32 candidate positions per step; a byte qualifies when
// b[j] == c AND matched[j] == 0. movemask + countr_zero picks the lowest
// qualifying index, which is exactly the scalar loop's first hit.

size_t JaroScanAvx2(const char* b, const uint8_t* matched, size_t lo,
                    size_t hi, char c) {
  const __m256i needle = _mm256_set1_epi8(c);
  const __m256i zero = _mm256_setzero_si256();
  size_t j = lo;
  for (; j + 32 <= hi; j += 32) {
    const __m256i text =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i used =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(matched + j));
    const __m256i hit = _mm256_and_si256(_mm256_cmpeq_epi8(text, needle),
                                         _mm256_cmpeq_epi8(used, zero));
    const uint32_t mask =
        static_cast<uint32_t>(_mm256_movemask_epi8(hit));
    if (mask != 0) {
      return j + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; j < hi; ++j) {
    if (matched[j] == 0 && b[j] == c) return j;
  }
  return hi;
}

// ---- lev_row -----------------------------------------------------------
//
// The scalar recurrence
//   cur[j] = min(prev[j] + 1, cur[j-1] + 1, prev[j-1] + cost(j))
// carries a dependency through cur[j-1]. Defining
//   t[j] = min(prev[j] + 1, prev[j-1] + cost(j))
// and unrolling the carry gives the closed form
//   cur[j] = j + min(row_index, min_{1 <= k <= j} (t[k] - k)),
// i.e. a prefix-min of the dependency-free values t[k] - k, seeded with
// cur[0] = row_index. Integer min is associative, so the vectorized
// prefix-min computes exactly the scalar result.

// Lane-wise inclusive prefix-min over 8 int32 lanes: log-step shifts
// toward higher lanes with an INT_MAX identity filling the vacated lanes.
inline __m256i PrefixMinLanes(__m256i v) {
  const __m256i top = _mm256_set1_epi32(INT_MAX);
  const __m256i idx1 = _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6);
  const __m256i idx2 = _mm256_setr_epi32(0, 1, 0, 1, 2, 3, 4, 5);
  v = _mm256_min_epi32(
      v, _mm256_blend_epi32(_mm256_permutevar8x32_epi32(v, idx1), top, 0x01));
  v = _mm256_min_epi32(
      v, _mm256_blend_epi32(_mm256_permutevar8x32_epi32(v, idx2), top, 0x03));
  // Shift by 4 lanes: low 128 bits become the identity, high 128 bits take
  // the old low half.
  v = _mm256_min_epi32(
      v, _mm256_blend_epi32(_mm256_permute2x128_si256(v, v, 0x08), top, 0x0F));
  return v;
}

void LevRowAvx2(const int* prev, int* cur, const char* b, size_t m,
                char a_char, int row_index) {
  cur[0] = row_index;
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i lane_offsets = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i a_broadcast =
      _mm256_set1_epi32(static_cast<int8_t>(a_char));
  // Running min of {row_index} ∪ {t[k] - k : k already processed}.
  int carry = row_index;
  size_t j = 1;
  for (; j + 8 <= m + 1; j += 8) {
    const __m256i prev_j =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + j));
    const __m256i prev_jm1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + j - 1));
    // b[j-1 .. j+6] sign-extended to int32 (a_broadcast is sign-extended
    // the same way, so byte equality is preserved).
    const __m256i text = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(b + j - 1)));
    // cost = 0 where equal, 1 where not: cmpeq yields -1/0, +1 flips it.
    const __m256i cost =
        _mm256_add_epi32(_mm256_cmpeq_epi32(text, a_broadcast), one);
    const __m256i t = _mm256_min_epi32(_mm256_add_epi32(prev_j, one),
                                       _mm256_add_epi32(prev_jm1, cost));
    const __m256i jvec =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(j)),
                         lane_offsets);
    const __m256i pm = _mm256_min_epi32(
        PrefixMinLanes(_mm256_sub_epi32(t, jvec)), _mm256_set1_epi32(carry));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur + j),
                        _mm256_add_epi32(pm, jvec));
    // Lane 7 of pm is min(carry, min over this strip of t[k] - k).
    carry = _mm256_extract_epi32(pm, 7);
  }
  for (; j <= m; ++j) {
    const int substitution = prev[j - 1] + (a_char == b[j - 1] ? 0 : 1);
    cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, substitution});
  }
}

// ---- svm_margin_block --------------------------------------------------
//
// Full 8-row blocks: load 8 floats from each row, transpose in registers
// so each column vector holds one feature j across all 8 rows, then for
// each j broadcast w[j] and do one mul_pd + one add_pd into per-row double
// accumulators — the same single-rounded multiply-add per (row, j) as the
// scalar reference, just 4 rows per instruction. Partial trailing blocks
// take the scalar kernel.

// 8x8 float transpose: rows in, columns out (lane r of out[k] = in[r][k]).
inline void Transpose8x8(const __m256 in[8], __m256 out[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(in[0], in[1]);
  const __m256 t1 = _mm256_unpackhi_ps(in[0], in[1]);
  const __m256 t2 = _mm256_unpacklo_ps(in[2], in[3]);
  const __m256 t3 = _mm256_unpackhi_ps(in[2], in[3]);
  const __m256 t4 = _mm256_unpacklo_ps(in[4], in[5]);
  const __m256 t5 = _mm256_unpackhi_ps(in[4], in[5]);
  const __m256 t6 = _mm256_unpacklo_ps(in[6], in[7]);
  const __m256 t7 = _mm256_unpackhi_ps(in[6], in[7]);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, 0x44);
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, 0xEE);
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, 0x44);
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, 0xEE);
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, 0x44);
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, 0xEE);
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, 0x44);
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, 0xEE);
  out[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
  out[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
  out[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
  out[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
  out[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
  out[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
  out[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
  out[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
}

void SvmMarginBlockAvx2(const double* w, size_t d, double bias,
                        const float* const* x, size_t nrows, double* out) {
  static_assert(kSvmMarginBlock == 8,
                "AVX2 SVM kernel is shaped for 8-row blocks");
  if (nrows != 8) {
    kScalarOps.svm_margin_block(w, d, bias, x, nrows, out);
    return;
  }
  __m256d acc_lo = _mm256_set1_pd(bias);  // Rows 0..3.
  __m256d acc_hi = _mm256_set1_pd(bias);  // Rows 4..7.
  size_t j = 0;
  __m256 rows[8];
  __m256 cols[8];
  for (; j + 8 <= d; j += 8) {
    for (size_t r = 0; r < 8; ++r) rows[r] = _mm256_loadu_ps(x[r] + j);
    Transpose8x8(rows, cols);
    for (size_t k = 0; k < 8; ++k) {
      const __m256d wj = _mm256_set1_pd(w[j + k]);
      const __m256d x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(cols[k]));
      const __m256d x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(cols[k], 1));
      acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(wj, x_lo));
      acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(wj, x_hi));
    }
  }
  double acc[8];
  _mm256_storeu_pd(acc, acc_lo);
  _mm256_storeu_pd(acc + 4, acc_hi);
  // Feature tail continues the same accumulators in ascending j.
  for (; j < d; ++j) {
    const double wj = w[j];
    for (size_t r = 0; r < 8; ++r) acc[r] += wj * x[r][j];
  }
  for (size_t r = 0; r < 8; ++r) out[r] = acc[r];
}

// ---- nn_affine ---------------------------------------------------------
//
// Vectorized across UNITS: with the [in x out] transposed weights (wt),
// four units' accumulators ride one __m256d, each fed x[j] * wt[j][o] in
// ascending j. Per unit the operation sequence matches the scalar
// row-major loop exactly. The unit tail (out % 4) runs scalar off the
// row-major weights.

template <typename In>
void NnAffineAvx2(const double* w, const double* wt, const double* bias,
                  size_t in, size_t out, const In* x, double* z) {
  size_t o = 0;
  for (; o + 4 <= out; o += 4) {
    __m256d acc = _mm256_loadu_pd(bias + o);
    const double* col = wt + o;
    for (size_t j = 0; j < in; ++j) {
      const __m256d xj = _mm256_set1_pd(static_cast<double>(x[j]));
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(xj, _mm256_loadu_pd(col + j * out)));
    }
    _mm256_storeu_pd(z + o, acc);
  }
  for (; o < out; ++o) {
    const double* wo = w + o * in;
    double acc = bias[o];
    for (size_t j = 0; j < in; ++j) acc += wo[j] * x[j];
    z[o] = acc;
  }
}

}  // namespace

const KernelOps kAvx2Ops = {
    /*name=*/"avx2",
    /*jaro_scan=*/JaroScanAvx2,
    /*lev_row=*/LevRowAvx2,
    /*svm_margin_block=*/SvmMarginBlockAvx2,
    /*nn_wants_transpose=*/true,
    /*nn_affine_f32=*/NnAffineAvx2<float>,
    /*nn_affine_f64=*/NnAffineAvx2<double>,
};

}  // namespace internal
}  // namespace kernels
}  // namespace alem
