// Portable scalar kernels — the reference implementations every other
// backend is differentially tested against (tests/kernel_backend_test.cc).
// These are verbatim extractions of the inner loops that previously lived
// inline in sim/edit_based.cc, ml/linear_svm.cc, and ml/neural_net.cc;
// changing any arithmetic here changes the framework's golden baselines.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "kernels/kernels_internal.h"

namespace alem {
namespace kernels {
namespace internal {
namespace {

size_t JaroScanScalar(const char* b, const uint8_t* matched, size_t lo,
                      size_t hi, char c) {
  for (size_t j = lo; j < hi; ++j) {
    if (matched[j] == 0 && b[j] == c) return j;
  }
  return hi;
}

void LevRowScalar(const int* prev, int* cur, const char* b, size_t m,
                  char a_char, int row_index) {
  cur[0] = row_index;
  for (size_t j = 1; j <= m; ++j) {
    const int substitution = prev[j - 1] + (a_char == b[j - 1] ? 0 : 1);
    cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, substitution});
  }
}

void SvmMarginBlockScalar(const double* w, size_t d, double bias,
                          const float* const* x, size_t nrows, double* out) {
  // Register-blocked GEMV: walk the weight vector once and feed every
  // row's accumulator from the same loaded weight. Each accumulator starts
  // at bias and sees w[j] * x[j] in ascending j — the scalar Margin()
  // order, so the sums are bitwise-identical to per-row evaluation.
  double acc[kSvmMarginBlock];
  for (size_t r = 0; r < nrows; ++r) acc[r] = bias;
  for (size_t j = 0; j < d; ++j) {
    const double wj = w[j];
    for (size_t r = 0; r < nrows; ++r) acc[r] += wj * x[r][j];
  }
  for (size_t r = 0; r < nrows; ++r) out[r] = acc[r];
}

template <typename In>
void NnAffineScalar(const double* w, const double* /*wt*/, const double* bias,
                    size_t in, size_t out, const In* x, double* z) {
  for (size_t o = 0; o < out; ++o) {
    const double* wo = w + o * in;
    double acc = bias[o];
    for (size_t j = 0; j < in; ++j) acc += wo[j] * x[j];
    z[o] = acc;
  }
}

}  // namespace

const KernelOps kScalarOps = {
    /*name=*/"scalar",
    /*jaro_scan=*/JaroScanScalar,
    /*lev_row=*/LevRowScalar,
    /*svm_margin_block=*/SvmMarginBlockScalar,
    /*nn_wants_transpose=*/false,
    /*nn_affine_f32=*/NnAffineScalar<float>,
    /*nn_affine_f64=*/NnAffineScalar<double>,
};

}  // namespace internal
}  // namespace kernels
}  // namespace alem
