// Ablation (DESIGN.md §5.4): bootstrap committee size B for learner-agnostic
// QBC on linear SVMs. Larger committees reduce selection randomness (fewer
// variance ties) at linearly growing committee-creation cost — the trade-off
// Section 4.1 of the paper describes.

#include <cstdio>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader("Ablation: QBC committee size (Linear SVM, Abt-Buy)",
                 "quality vs committee-creation cost as B grows");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  std::printf("%12s %8s %14s %18s %18s\n", "#committee", "bestF1",
              "labels@conv", "committeeTime(s)", "scoringTime(s)");
  for (const int committee : {2, 5, 10, 20, 32}) {
    const RunResult result =
        b::Run(data, LinearQbcSpec(committee), max_labels);
    double committee_seconds = 0.0;
    double scoring_seconds = 0.0;
    for (const IterationStats& stats : result.curve) {
      committee_seconds += stats.committee_seconds;
      scoring_seconds += stats.scoring_seconds;
    }
    std::printf("%12d %8.3f %14zu %18.3f %18.3f\n", committee,
                result.best_f1, result.labels_to_converge, committee_seconds,
                scoring_seconds);
  }
  return 0;
}
