// Micro-benchmarks: featurization engine throughput (google-benchmark).
//
// Compares the three ways a prepared dataset's float feature matrix can be
// obtained — the legacy per-pair extraction loop, batched per-dimension
// kernel sweeps (SimilarityFunction::EvaluateBatch at 1 and 4 threads), and
// a warm feature-cache load — plus the serialize/deserialize halves of the
// cache format in isolation. The workload is the acceptance-criteria one:
// Abt-Buy at scale 0.3. Numbers live in EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "core/harness.h"
#include "features/feature_cache.h"
#include "features/feature_extractor.h"
#include "features/feature_matrix.h"
#include "parallel/pool.h"
#include "synth/profiles.h"

namespace alem {
namespace {

// Shared prepared dataset (cache off: this binary measures featurization
// itself, so PrepareDataset must always recompute).
const PreparedDataset& Data() {
  static const auto& data = *new PreparedDataset([] {
    PrepareOptions options;
    options.profile = AbtBuyProfile();
    options.data_seed = 7;
    options.scale = 0.3;
    options.use_cache = false;
    return PrepareDataset(options);
  }());
  return data;
}

const FeatureExtractor& Extractor() {
  static const auto& extractor = *new FeatureExtractor(Data().dataset);
  return extractor;
}

// The legacy extraction plan: one full feature vector at a time, paying the
// per-function setup (scratch allocation, registry walk) for every pair.
void BM_ExtractPerPair(benchmark::State& state) {
  const auto& extractor = Extractor();
  const auto& pairs = Data().pairs;
  FeatureMatrix out(pairs.size(), extractor.num_dims());
  for (auto _ : state) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      extractor.ExtractPair(pairs[i], out.MutableRow(i));
    }
    benchmark::DoNotOptimize(out.At(0, 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs.size()));
}
BENCHMARK(BM_ExtractPerPair)->Unit(benchmark::kMillisecond);

// Batched per-dimension sweeps; arg = worker threads (1 = serial path).
void BM_ExtractBatch(benchmark::State& state) {
  parallel::SetNumThreads(static_cast<int>(state.range(0)));
  const auto& extractor = Extractor();
  const auto& pairs = Data().pairs;
  FeatureMatrix out;
  for (auto _ : state) {
    extractor.ExtractBatch(pairs, &out);
    benchmark::DoNotOptimize(out.At(0, 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs.size()));
  parallel::SetNumThreads(1);
}
BENCHMARK(BM_ExtractBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Warm cache load: the whole matrix from disk, validated and checksummed.
void BM_CacheLoad(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "alem_bench_featurize")
          .string();
  const FeatureCache cache(dir);
  FeatureCacheKey key;
  key.dataset_name = Data().name;
  key.profile_fingerprint = ProfileFingerprint(AbtBuyProfile());
  key.data_seed = Data().data_seed;
  key.scale = Data().scale;
  key.num_dims = Data().float_features.dims();
  cache.Store(key, Data().float_features);
  FeatureMatrix loaded;
  for (auto _ : state) {
    const bool hit = cache.Load(key, &loaded);
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(loaded.rows()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CacheLoad)->Unit(benchmark::kMillisecond);

void BM_MatrixSerialize(benchmark::State& state) {
  const FeatureMatrix& matrix = Data().float_features;
  for (auto _ : state) {
    const std::string blob = matrix.Serialize();
    benchmark::DoNotOptimize(blob.size());
  }
}
BENCHMARK(BM_MatrixSerialize)->Unit(benchmark::kMillisecond);

void BM_MatrixDeserialize(benchmark::State& state) {
  const std::string blob = Data().float_features.Serialize();
  FeatureMatrix parsed;
  for (auto _ : state) {
    const bool ok = FeatureMatrix::Deserialize(blob, &parsed);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MatrixDeserialize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace alem
