// Regenerates Fig. 19: learner-agnostic QBC (committee sizes 2..20) vs the
// learner-aware LFP/LFN heuristic for rule learning on the social-media
// matching task (employee records vs profile universe).
//
// The original dataset has no ground truth; each learned rule was validated
// by a human expert. Here a *simulated expert* accepts a rule iff its
// precision on the (hidden) reference labels is >= 0.85 — see DESIGN.md.
// Reported per strategy, as in the paper: #iterations, #valid rules,
// coverage (matches predicted by valid rules), average user wait time per
// iteration, total wait, and wait per valid rule.
// Paper shape: LFP/LFN rivals the large committees (QBC 10/20) on #valid
// rules and coverage while being several times faster in total wait time;
// QBC(2) is fast but finds fewer, lower-coverage rules.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "synth/profiles.h"

namespace {

struct StrategyReport {
  std::string name;
  size_t iterations = 0;
  size_t valid_rules = 0;
  size_t coverage = 0;
  double total_wait = 0.0;
};

}  // namespace

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 19: QBC vs LFP/LFN for Rule Learning (Social Media Dataset)",
      "simulated expert validates a rule iff reference precision >= 0.85");
  const size_t max_labels = b::MaxLabelsFromEnv(400);
  const PreparedDataset data =
      PrepareDataset({SocialMediaProfile(), 7, b::ScaleFromEnv()});
  std::printf("post-blocking pairs: %zu, hidden matches: %zu\n",
              data.pairs.size(), data.num_matches);

  auto evaluate_strategy = [&](const std::string& name,
                               std::unique_ptr<ExampleSelector> selector) {
    ActivePool pool(data.boolean_features);
    PerfectOracle oracle(data.truth);
    // Progressive evaluation still runs inside the loop but is not reported:
    // the experiment mimics the no-ground-truth setting.
    ProgressiveEvaluator evaluator(data.truth);
    RuleLearner learner;
    ActiveLearningConfig config;
    config.max_labels = max_labels;
    ActiveLearningLoop loop(learner, *selector, oracle, evaluator, config);
    const std::vector<IterationStats> curve = loop.Run(pool);

    StrategyReport report;
    report.name = name;
    report.iterations = curve.size();
    for (const IterationStats& stats : curve) {
      report.total_wait += stats.wait_seconds;
    }

    // Simulated expert validation of each learned conjunction.
    std::vector<char> covered(data.pairs.size(), 0);
    for (const Conjunction& rule : learner.dnf().conjunctions) {
      size_t predicted = 0, correct = 0;
      for (size_t row = 0; row < data.boolean_features.rows(); ++row) {
        if (rule.Matches(data.boolean_features.Row(row))) {
          ++predicted;
          correct += static_cast<size_t>(data.truth[row]);
        }
      }
      if (predicted > 0 &&
          static_cast<double>(correct) / static_cast<double>(predicted) >=
              0.85) {
        ++report.valid_rules;
        for (size_t row = 0; row < data.boolean_features.rows(); ++row) {
          if (rule.Matches(data.boolean_features.Row(row))) {
            covered[row] = 1;
          }
        }
      }
    }
    for (const char c : covered) report.coverage += static_cast<size_t>(c);
    return report;
  };

  std::vector<StrategyReport> reports;
  reports.push_back(
      evaluate_strategy("LFP/LFN", std::make_unique<LfpLfnSelector>()));
  for (const int committee : {2, 5, 10, 20}) {
    reports.push_back(evaluate_strategy(
        "QBC(" + std::to_string(committee) + ")",
        std::make_unique<QbcSelector>(committee, 17)));
  }

  std::printf("\n%-10s %12s %12s %10s %16s %18s %20s\n", "Strategy",
              "#Iterations", "#ValidRules", "Coverage", "TotalWait(s)",
              "AvgWait/Iter(s)", "Wait/ValidRule(s)");
  for (const StrategyReport& report : reports) {
    std::printf("%-10s %12zu %12zu %10zu %16.3f %18.4f %20.3f\n",
                report.name.c_str(), report.iterations, report.valid_rules,
                report.coverage, report.total_wait,
                report.total_wait / static_cast<double>(report.iterations),
                report.valid_rules > 0
                    ? report.total_wait /
                          static_cast<double>(report.valid_rules)
                    : 0.0);
  }
  return 0;
}
