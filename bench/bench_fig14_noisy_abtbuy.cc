// Regenerates Fig. 14: active learning under a probabilistically noisy
// Oracle on Abt-Buy, for four classifier variants x noise in {0..40%}.
// F1 values are averaged over ALEM_RUNS runs with distinct seeds, as in the
// paper. Paper shape: trees degrade gracefully and keep an edge up to ~20%
// noise; NNs resist noise thanks to regularization; SVMs drop sharply past
// 10%.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 14: Active Learning using a Probabilistically Noisy Oracle "
      "(Abt-Buy, Progressive F1)",
      "mean F1 over repeated runs; noise = label flip probability");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const size_t runs = b::RunsFromEnv(3);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  struct Panel {
    std::string title;
    ApproachSpec spec;
  };
  const std::vector<Panel> panels = {
      {"(a) Trees(20)", TreesSpec(20)},
      {"(b) Non-Convex Non-Linear (Margin)", NeuralMarginSpec()},
      {"(c) Linear-Margin(Ensemble)", LinearMarginEnsembleSpec()},
      {"(d) Linear-Margin(1Dim)", LinearMarginSpec(1)},
  };
  const double noises[] = {0.0, 0.1, 0.2, 0.3, 0.4};

  for (const Panel& panel : panels) {
    std::vector<b::Series> series;
    for (const double noise : noises) {
      std::vector<std::vector<IterationStats>> curves;
      for (size_t run = 0; run < runs; ++run) {
        curves.push_back(
            b::Run(data, panel.spec, max_labels, noise, false, 100 + run)
                .curve);
      }
      const std::vector<AveragedPoint> averaged = AverageCurves(curves);
      b::Series s;
      s.name = std::to_string(static_cast<int>(noise * 100)) + "%";
      for (const AveragedPoint& point : averaged) {
        s.points.emplace_back(point.labels, point.mean_f1);
      }
      series.push_back(std::move(s));
    }
    b::PrintSeriesTable(panel.title, series);
  }
  return 0;
}
