// Regenerates Fig. 16: active tree ensembles vs supervised tree ensembles
// vs DeepMatcher on the Magellan datasets, using conventional 80/20
// train/test splits and perfect Oracles.
// Paper shape: ActiveTrees(QBC-20) reaches its best test F1 with far fewer
// labels than SupervisedTrees(Random-20); DeepMatcher needs most of the 80%
// training pool and shows higher run-to-run variance. DeepMatcher here is a
// deeper supervised NN proxy (see DESIGN.md substitutions).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "synth/profiles.h"
#include "util/stats.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 16: Active vs. Supervised Learning on Magellan/DeepMatcher "
      "Datasets (Perfect Oracles, 20% Test Labels)",
      "ActiveTrees(QBC-20) vs SupervisedTrees(Random-20) vs DeepMatcher "
      "proxy; test F1 on the held-out 20%");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const size_t deepmatcher_runs = b::RunsFromEnv(3);
  const double scale = b::ScaleFromEnv();

  const SynthProfile profiles[] = {WalmartAmazonProfile(),
                                   AmazonBestBuyProfile(), BeerProfile(),
                                   BabyProductsProfile()};
  for (const SynthProfile& profile : profiles) {
    const PreparedDataset data = PrepareDataset({profile, 7, scale});
    const size_t test_labels = data.pairs.size() / 5;

    const RunResult active =
        b::Run(data, TreesSpec(20), max_labels, 0.0, /*holdout=*/true);
    const RunResult supervised = b::Run(data, SupervisedTreesSpec(20),
                                        max_labels, 0.0, /*holdout=*/true);

    // DeepMatcher: averaged over runs (the paper reports its mean because of
    // its run-to-run variance) and its final-F1 standard deviation.
    std::vector<std::vector<IterationStats>> dm_curves;
    RunningStats dm_final;
    for (size_t run = 0; run < deepmatcher_runs; ++run) {
      const RunResult dm = b::Run(data, DeepMatcherSpec(), max_labels, 0.0,
                                  /*holdout=*/true, 200 + run);
      dm_final.Add(dm.curve.empty() ? 0.0 : dm.curve.back().metrics.f1);
      dm_curves.push_back(dm.curve);
    }
    b::Series dm_series;
    dm_series.name = "DeepMatcher";
    for (const AveragedPoint& point : AverageCurves(dm_curves)) {
      dm_series.points.emplace_back(point.labels, point.mean_f1);
    }

    char title[128];
    std::snprintf(title, sizeof(title), "%s (%zu test labels)",
                  profile.name.c_str(), test_labels);
    b::PrintSeriesTable(
        title, {b::CurveF1("ActiveTrees", active.curve),
                b::CurveF1("SupTrees", supervised.curve), dm_series});
    std::printf("DeepMatcher final-F1 stddev across %zu runs: %.3f\n",
                deepmatcher_runs, dm_final.stddev());
  }
  return 0;
}
