// Ablation: majority-vote label correction under crowd noise.
//
// Section 6.2 of the paper notes that real crowdsourced pipelines regulate
// noisy labels with techniques like majority voting, which its noisy-Oracle
// experiments deliberately omit. This bench quantifies the rescue: Trees(20)
// on Abt-Buy at 20% and 30% worker noise, with 1 (no correction), 3, and 5
// independent votes per example.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Ablation: majority-vote label correction (Trees(20), Abt-Buy)",
      "n votes per example at per-worker noise p; effective noise = "
      "P[Binomial(n,p) > n/2]");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  std::printf("%8s %8s %8s %14s\n", "noise", "#votes", "bestF1",
              "labels@conv");
  for (const double noise : {0.2, 0.3}) {
    for (const int votes : {1, 3, 5}) {
      ActivePool pool(data.float_features);
      MajorityVoteOracle oracle(data.truth, noise, votes, 42);
      ProgressiveEvaluator evaluator(data.truth);
      RandomForestConfig forest_config;
      forest_config.num_trees = 20;
      ForestLearner learner(forest_config);
      ForestQbcSelector selector(9);
      ActiveLearningConfig config;
      config.max_labels = max_labels;
      ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
      const auto curve = loop.Run(pool);

      double best_f1 = 0.0;
      size_t best_labels = 0;
      for (const IterationStats& stats : curve) {
        if (stats.metrics.f1 > best_f1) {
          best_f1 = stats.metrics.f1;
          best_labels = stats.labels_used;
        }
      }
      std::printf("%7.0f%% %8d %8.3f %14zu\n", noise * 100, votes, best_f1,
                  best_labels);
    }
  }
  return 0;
}
