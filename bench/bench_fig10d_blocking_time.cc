// Regenerates Fig. 10d: the effect of selection-time blocking and active
// ensembles on margin example-scoring time (linear classifier, Cora).
// Paper shape: margin(1Dim) scores fewer examples than margin(allDim);
// the ensemble's scoring time collapses in late iterations as accepted
// classifiers' coverage shrinks the unlabeled pool.

#include <cstdio>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 10d: Effect of Blocking and Ensemble on Linear Classifier "
      "selection time (Cora)",
      "scoring seconds per iteration; pruned = examples skipped by blocking");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({CoraProfile(), 7, b::ScaleFromEnv()});

  const RunResult blocked = b::Run(data, LinearMarginSpec(1), max_labels);
  const RunResult full = b::Run(data, LinearMarginSpec(0), max_labels);
  const RunResult ensemble =
      b::Run(data, LinearMarginEnsembleSpec(), max_labels);

  b::PrintSeriesTable(
      "Example scoring time (seconds)",
      {b::CurveScoringSeconds("Margin(1Dim)", blocked.curve),
       b::CurveScoringSeconds("Margin(189Dim)", full.curve),
       b::CurveScoringSeconds("Margin(Ensemble)", ensemble.curve)},
      5);

  // Blocking effectiveness: how much of the pool was skipped per iteration.
  size_t total_scored = 0, total_pruned = 0;
  for (const IterationStats& stats : blocked.curve) {
    total_scored += stats.scored_examples;
    total_pruned += stats.pruned_examples;
  }
  std::printf(
      "\nMargin(1Dim) blocking: %zu examples scored, %zu pruned "
      "(%.1f%% of candidates skipped without margin computation)\n",
      total_scored, total_pruned,
      100.0 * static_cast<double>(total_pruned) /
          static_cast<double>(total_scored + total_pruned));
  std::printf("Margin(Ensemble): %zu accepted SVMs at termination\n",
              ensemble.ensemble_accepted);
  return 0;
}
