// Ablation (DESIGN.md §5): labeling batch size. The paper labels 10
// examples per iteration. Smaller batches re-train more often per label
// (better label efficiency, more user wait); larger batches amortize
// training but select with a staler model.

#include <cstdio>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader("Ablation: labeling batch size (Trees(20), Abt-Buy)",
                 "paper default batch = 10 labels per iteration");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  std::printf("%8s %8s %14s %12s %14s\n", "batch", "bestF1", "labels@conv",
              "iterations", "totalWait(s)");
  for (const size_t batch : {size_t{1}, size_t{5}, size_t{10}, size_t{20},
                             size_t{50}}) {
    RunConfig config;
    config.approach = TreesSpec(20);
    config.max_labels = max_labels;
    config.batch_size = batch;
    const RunResult result = RunActiveLearning(data, config);
    std::printf("%8zu %8.3f %14zu %12zu %14.2f\n", batch, result.best_f1,
                result.labels_to_converge, result.curve.size(),
                result.total_wait_seconds);
  }
  return 0;
}
