// Micro-benchmarks: offline blocking throughput — inverted-index blocking
// vs the brute-force reference across dataset scales (google-benchmark).

#include <benchmark/benchmark.h>

#include "blocking/jaccard_blocking.h"
#include "blocking/minhash_lsh.h"
#include "synth/generator.h"
#include "synth/profiles.h"

namespace alem {
namespace {

const EmDataset& DatasetAtScale(int permille) {
  // Cache generated datasets across benchmark iterations.
  static auto& cache = *new std::map<int, EmDataset>();
  auto it = cache.find(permille);
  if (it == cache.end()) {
    it = cache
             .emplace(permille, GenerateDataset(AbtBuyProfile(), 7,
                                                permille / 1000.0))
             .first;
  }
  return it->second;
}

void BM_JaccardBlockingIndexed(benchmark::State& state) {
  const EmDataset& dataset = DatasetAtScale(static_cast<int>(state.range(0)));
  const BlockingConfig config{0.1875};
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = JaccardBlocking(dataset, config).size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["post_blocking_pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dataset.TotalPairs()));
}
BENCHMARK(BM_JaccardBlockingIndexed)->Arg(100)->Arg(300)->Arg(1000);

void BM_JaccardBlockingBruteForce(benchmark::State& state) {
  const EmDataset& dataset = DatasetAtScale(static_cast<int>(state.range(0)));
  const BlockingConfig config{0.1875};
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardBlockingBruteForce(dataset, config));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(dataset.TotalPairs()));
}
BENCHMARK(BM_JaccardBlockingBruteForce)->Arg(100)->Arg(300);

void BM_JaccardBlockingPrefix(benchmark::State& state) {
  const EmDataset& dataset = DatasetAtScale(static_cast<int>(state.range(0)));
  const BlockingConfig config{0.1875};
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = JaccardBlockingPrefix(dataset, config).size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["post_blocking_pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.TotalPairs()));
}
BENCHMARK(BM_JaccardBlockingPrefix)->Arg(100)->Arg(300)->Arg(1000);

void BM_MinHashBlocking(benchmark::State& state) {
  const EmDataset& dataset = DatasetAtScale(static_cast<int>(state.range(0)));
  const MinHashConfig config = ConfigForThreshold(0.1875, 64);
  size_t pairs = 0;
  for (auto _ : state) {
    pairs = MinHashBlocking(dataset, config).size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["post_blocking_pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset.TotalPairs()));
}
BENCHMARK(BM_MinHashBlocking)->Arg(100)->Arg(300)->Arg(1000);

}  // namespace
}  // namespace alem
