// Regenerates Fig. 17: active vs supervised tree ensembles on Abt-Buy with
// 80/20 splits, under 0%, 10% and 20% Oracle noise.
// Paper shape: active trees reach supervised-on-everything quality within
// the first few iterations; the advantage shrinks to insignificance at 20%
// noise.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 17: Active vs. Supervised Trees(20) (Abt-Buy, 20% Test Labels)",
      "test F1 on the held-out split at 0/10/20% Oracle noise");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const size_t runs = b::RunsFromEnv(3);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  for (const double noise : {0.0, 0.1, 0.2}) {
    std::vector<std::vector<IterationStats>> active_curves;
    std::vector<std::vector<IterationStats>> supervised_curves;
    for (size_t run = 0; run < runs; ++run) {
      active_curves.push_back(b::Run(data, TreesSpec(20), max_labels, noise,
                                     /*holdout=*/true, 300 + run)
                                  .curve);
      supervised_curves.push_back(
          b::Run(data, SupervisedTreesSpec(20), max_labels, noise,
                 /*holdout=*/true, 300 + run)
              .curve);
    }
    auto to_series = [](const std::string& name,
                        const std::vector<std::vector<IterationStats>>& cs) {
      b::Series s;
      s.name = name;
      for (const AveragedPoint& point : AverageCurves(cs)) {
        s.points.emplace_back(point.labels, point.mean_f1);
      }
      return s;
    };
    char title[64];
    std::snprintf(title, sizeof(title), "%d%% Noisy Oracle",
                  static_cast<int>(noise * 100));
    b::PrintSeriesTable(title,
                        {to_series("ActiveTrees", active_curves),
                         to_series("SupTrees", supervised_curves)});
  }
  return 0;
}
