// Extension selectors vs the paper's core strategies.
//
// Compares IWAL (Section 2 related work; exploration-heavy sampling) and
// density-weighted margin selection (Settles' information density) against
// plain margin and QBC on a linear SVM. The paper's expectation: IWAL burns
// more labels for the same F1; density weighting helps when ambiguous
// outliers exist.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Extension: IWAL and density-weighted selection vs margin/QBC "
      "(Linear SVM, Abt-Buy)",
      "IWAL samples by disagreement probability; Density = margin x pool "
      "similarity");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  auto run = [&](std::unique_ptr<ExampleSelector> selector) {
    ActivePool pool(data.float_features);
    PerfectOracle oracle(data.truth);
    ProgressiveEvaluator evaluator(data.truth);
    SvmLearner learner{LinearSvmConfig{}};
    ActiveLearningConfig config;
    config.max_labels = max_labels;
    ActiveLearningLoop loop(learner, *selector, oracle, evaluator, config);
    return loop.Run(pool);
  };

  const auto margin = run(std::make_unique<MarginSelector>());
  const auto qbc = run(std::make_unique<QbcSelector>(5, 3));
  const auto iwal = run(std::make_unique<IwalSelector>(5, 0.1, 3));
  const auto density = run(std::make_unique<DensityWeightedSelector>(1.0, 3));

  b::PrintSeriesTable("Progressive F1",
                      {b::CurveF1("Margin", margin),
                       b::CurveF1("QBC(5)", qbc),
                       b::CurveF1("IWAL(5)", iwal),
                       b::CurveF1("Density", density)});
  return 0;
}
