// Regenerates Fig. 10a-c: example-selection latency on Cora, split into
// committee-creation time (QBC only) and example-scoring time, per
// classifier family. The paper's shape: committee creation grows with
// #labels and dominates QBC; scoring shrinks as the unlabeled pool drains;
// margin has no committee cost; forests get their committee for free.

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 10a-c: Example Selection Times of Strategies per Classifier "
      "(Cora)",
      "create* = committee creation seconds, score* = example scoring "
      "seconds");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({CoraProfile(), 7, b::ScaleFromEnv()});

  // (a) Non-convex non-linear.
  {
    const RunResult qbc = b::Run(data, NeuralQbcSpec(2), max_labels);
    const RunResult margin = b::Run(data, NeuralMarginSpec(), max_labels);
    b::PrintSeriesTable(
        "(a) Non-Convex Non-Linear (seconds)",
        {b::CurveCommitteeSeconds("createQBC(2)", qbc.curve),
         b::CurveScoringSeconds("scoreQBC(2)", qbc.curve),
         b::CurveScoringSeconds("scoreMargin", margin.curve)},
        5);
  }
  // (b) Linear.
  {
    const RunResult qbc2 = b::Run(data, LinearQbcSpec(2), max_labels);
    const RunResult qbc20 = b::Run(data, LinearQbcSpec(20), max_labels);
    const RunResult margin = b::Run(data, LinearMarginSpec(0), max_labels);
    b::PrintSeriesTable(
        "(b) Linear Classifier (seconds)",
        {b::CurveCommitteeSeconds("createQBC(2)", qbc2.curve),
         b::CurveCommitteeSeconds("createQBC(20)", qbc20.curve),
         b::CurveScoringSeconds("scoreQBC(2)", qbc2.curve),
         b::CurveScoringSeconds("scoreQBC(20)", qbc20.curve),
         b::CurveScoringSeconds("scoreMargin", margin.curve)},
        5);
  }
  // (c) Tree-based: scoring only (the committee is trained with the model).
  {
    const RunResult t2 = b::Run(data, TreesSpec(2), max_labels);
    const RunResult t10 = b::Run(data, TreesSpec(10), max_labels);
    const RunResult t20 = b::Run(data, TreesSpec(20), max_labels);
    b::PrintSeriesTable(
        "(c) Tree-based Classifier (seconds)",
        {b::CurveScoringSeconds("scoreTrees(2)", t2.curve),
         b::CurveScoringSeconds("scoreTrees(10)", t10.curve),
         b::CurveScoringSeconds("scoreTrees(20)", t20.curve)},
        5);
  }
  return 0;
}
