// Ablation (DESIGN.md §5.3): the active-ensemble precision gate tau.
// The paper fixes tau = 0.85 for all datasets and observes that this suits
// some datasets better than others (Section 6.1). This ablation sweeps tau:
// a loose gate accepts imprecise members (recall up, precision down); a
// strict gate accepts few or none (the run degenerates to plain margin).

#include <cstdio>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Ablation: active-ensemble precision threshold tau "
      "(Linear-Margin(Ensemble))",
      "swept on Abt-Buy and DBLP-ACM; paper default tau = 0.85");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const double scale = b::ScaleFromEnv();

  for (const SynthProfile& profile : {AbtBuyProfile(), DblpAcmProfile()}) {
    const PreparedDataset data = PrepareDataset({profile, 7, scale});
    std::printf("\n%s:\n", profile.name.c_str());
    std::printf("%8s %8s %12s %14s\n", "tau", "bestF1", "#accepted",
                "labels@conv");
    for (const double tau : {0.5, 0.7, 0.85, 0.95}) {
      const RunResult result =
          b::Run(data, LinearMarginEnsembleSpec(tau), max_labels);
      std::printf("%8.2f %8.3f %12zu %14zu\n", tau, result.best_f1,
                  result.ensemble_accepted, result.labels_to_converge);
    }
  }
  return 0;
}
