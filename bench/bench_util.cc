#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "kernels/backend.h"
#include "obs/artifacts.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "parallel/pool.h"
#include "util/csv.h"

namespace alem {
namespace bench {

const char* BuildGitSha() { return obs::BuildStamp(); }

namespace {

// Resolved artifact destinations for the at-exit export (all empty until
// PrintHeader sees ALEM_TRACE_DIR / ALEM_REPORT_DIR).
obs::ArtifactOptions& ExportOptions() {
  static auto* options = new obs::ArtifactOptions();
  return *options;
}

// Unsanitized artifact name + process start, for the report's tool field
// and wall-clock total.
std::string& ReportArtifactName() {
  static std::string* name = new std::string();
  return *name;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

void ExportArtifactsAtExit() {
  const obs::ArtifactOptions& options = ExportOptions();
  options.ExportTraceAndMetrics();
  if (options.report_path.empty()) return;
  obs::RunReport report;
  report.kind = "bench";
  report.tool = ReportArtifactName();
  report.scale = ScaleFromEnv();
  report.threads = parallel::NumThreads();
  report.kernel_backend = std::string(kernels::BackendName());
  parallel::StampPoolProfile(&report);  // Before the gauge snapshot below.
  kernels::StampBackendGauge();
  obs::StampObservability(&report);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ProcessStart())
          .count();
  if (obs::WriteReportJson(options.report_path, report)) {
    std::printf("(report written to %s)\n", options.report_path.c_str());
  }
}

}  // namespace

double ScaleFromEnv(double default_scale) {
  const char* value = std::getenv("ALEM_SCALE");
  if (value == nullptr) return default_scale;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : default_scale;
}

size_t MaxLabelsFromEnv(size_t default_labels) {
  const char* value = std::getenv("ALEM_MAX_LABELS");
  if (value == nullptr) return default_labels;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : default_labels;
}

size_t RunsFromEnv(size_t default_runs) {
  const char* value = std::getenv("ALEM_RUNS");
  if (value == nullptr) return default_runs;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : default_runs;
}

void PrintHeader(const std::string& artifact,
                 const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("build=%s\n", BuildGitSha());
  std::printf("scale=%.2f (override with ALEM_SCALE / ALEM_MAX_LABELS / "
              "ALEM_RUNS)\n",
              ScaleFromEnv());
  std::printf("threads=%d (override with ALEM_THREADS; 1 = serial, results "
              "identical at any count)\n",
              parallel::NumThreads());
  std::printf("==============================================================\n");

  ProcessStart();  // Pin the wall-clock origin for the report export.
  const obs::ArtifactOptions options = obs::ArtifactOptionsFromEnv(artifact);
  options.EnableObservability();
  if (options.tracing_wanted() || options.metrics_wanted()) {
    const bool first = !ExportOptions().metrics_wanted() &&
                       ExportOptions().report_path.empty();
    ExportOptions() = options;
    ReportArtifactName() = artifact;
    if (first) std::atexit(ExportArtifactsAtExit);
    if (!options.trace_path.empty()) {
      std::printf("(tracing to %s)\n", options.trace_path.c_str());
    }
    if (!options.report_path.empty()) {
      std::printf("(reporting to %s)\n", options.report_path.c_str());
    }
  }
}

namespace {

Series CurveOf(const std::string& name,
               const std::vector<IterationStats>& curve,
               double (*extract)(const IterationStats&)) {
  Series series;
  series.name = name;
  series.points.reserve(curve.size());
  for (const IterationStats& stats : curve) {
    series.points.emplace_back(stats.labels_used, extract(stats));
  }
  return series;
}

}  // namespace

Series CurveF1(const std::string& name,
               const std::vector<IterationStats>& curve) {
  return CurveOf(name, curve,
                 [](const IterationStats& s) { return s.metrics.f1; });
}

Series CurveWaitSeconds(const std::string& name,
                        const std::vector<IterationStats>& curve) {
  return CurveOf(name, curve,
                 [](const IterationStats& s) { return s.wait_seconds; });
}

Series CurveCommitteeSeconds(const std::string& name,
                             const std::vector<IterationStats>& curve) {
  return CurveOf(name, curve,
                 [](const IterationStats& s) { return s.committee_seconds; });
}

Series CurveScoringSeconds(const std::string& name,
                           const std::vector<IterationStats>& curve) {
  return CurveOf(name, curve,
                 [](const IterationStats& s) { return s.scoring_seconds; });
}

Series CurveDnfAtoms(const std::string& name,
                     const std::vector<IterationStats>& curve) {
  return CurveOf(name, curve, [](const IterationStats& s) {
    return static_cast<double>(s.dnf_atoms);
  });
}

Series CurveTreeDepth(const std::string& name,
                      const std::vector<IterationStats>& curve) {
  return CurveOf(name, curve, [](const IterationStats& s) {
    return static_cast<double>(s.tree_depth);
  });
}

namespace {

// When ALEM_CSV_DIR is set, mirrors a series table into a CSV file there.
void MaybeWriteCsv(const std::string& title,
                   const std::vector<Series>& series,
                   const std::vector<size_t>& grid) {
  const char* dir = std::getenv("ALEM_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;

  std::string file_name;
  for (const char c : title) {
    file_name.push_back(
        std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"labels"};
  for (const Series& s : series) header.push_back(s.name);
  rows.push_back(std::move(header));
  for (const size_t labels : grid) {
    std::vector<std::string> row = {std::to_string(labels)};
    for (const Series& s : series) {
      double value = 0.0;
      bool have_value = false;
      for (const auto& [x, y] : s.points) {
        if (x <= labels) {
          value = y;
          have_value = true;
        } else {
          break;
        }
      }
      row.push_back(have_value ? std::to_string(value) : "");
    }
    rows.push_back(std::move(row));
  }
  const std::string path = std::string(dir) + "/" + file_name + ".csv";
  if (WriteCsvFile(path, rows)) {
    std::printf("(csv written to %s)\n", path.c_str());
  }
}

}  // namespace

void PrintSeriesTable(const std::string& title,
                      const std::vector<Series>& series, int value_digits) {
  std::printf("\n--- %s ---\n", title.c_str());
  if (series.empty()) return;

  // The x grid is the union of all label counts.
  std::vector<size_t> grid;
  for (const Series& s : series) {
    for (const auto& [labels, value] : s.points) {
      (void)value;
      grid.push_back(labels);
    }
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  MaybeWriteCsv(title, series, grid);

  const int name_width = 16;
  std::printf("%8s", "#labels");
  for (const Series& s : series) {
    std::printf("  %*s", name_width,
                s.name.size() > static_cast<size_t>(name_width)
                    ? s.name.substr(s.name.size() - name_width).c_str()
                    : s.name.c_str());
  }
  std::printf("\n");
  // Full names for truncated columns.
  for (const Series& s : series) {
    if (s.name.size() > static_cast<size_t>(name_width)) {
      std::printf("#   (col '%s' = %s)\n",
                  s.name.substr(s.name.size() - name_width).c_str(),
                  s.name.c_str());
    }
  }

  for (const size_t labels : grid) {
    std::printf("%8zu", labels);
    for (const Series& s : series) {
      // Value at the largest x <= labels; blank before the series starts.
      double value = 0.0;
      bool have_value = false;
      for (const auto& [x, y] : s.points) {
        if (x <= labels) {
          value = y;
          have_value = true;
        } else {
          break;
        }
      }
      if (have_value) {
        std::printf("  %*.*f", name_width, value_digits, value);
      } else {
        std::printf("  %*s", name_width, "-");
      }
    }
    std::printf("\n");
  }
}

void PrintSeriesPercentiles(const std::string& title,
                            const std::vector<Series>& series,
                            int value_digits) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::printf("%-24s %10s %10s %10s %10s\n", "series", "mean", "p50", "p95",
              "p99");
  for (const Series& s : series) {
    std::vector<double> values;
    values.reserve(s.points.size());
    double sum = 0.0;
    for (const auto& [x, y] : s.points) {
      (void)x;
      values.push_back(y);
      sum += y;
    }
    if (values.empty()) continue;
    std::sort(values.begin(), values.end());
    // Nearest-rank percentile: smallest value with at least q*n values at
    // or below it.
    const auto percentile = [&values](double q) {
      const size_t n = values.size();
      size_t rank = static_cast<size_t>(
          std::ceil(q * static_cast<double>(n)));
      if (rank == 0) rank = 1;
      return values[std::min(rank, n) - 1];
    };
    std::printf("%-24s %10.*f %10.*f %10.*f %10.*f\n", s.name.c_str(),
                value_digits, sum / static_cast<double>(values.size()),
                value_digits, percentile(0.50), value_digits,
                percentile(0.95), value_digits, percentile(0.99));
  }
}

RunResult Run(const PreparedDataset& data, const ApproachSpec& spec,
              size_t max_labels, double noise, bool holdout,
              uint64_t run_seed) {
  RunConfig config;
  config.approach = spec;
  config.max_labels = max_labels;
  config.oracle_noise = noise;
  config.holdout = holdout;
  config.run_seed = run_seed;
  return RunActiveLearning(data, config);
}

}  // namespace bench
}  // namespace alem
