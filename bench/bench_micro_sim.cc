// Micro-benchmarks: throughput of each similarity function and of full
// feature-vector extraction (google-benchmark).

#include <benchmark/benchmark.h>

#include "features/feature_extractor.h"
#include "sim/similarity.h"
#include "synth/generator.h"
#include "synth/profiles.h"

namespace alem {
namespace {

const AttributeProfile& LeftProfile() {
  static const auto& profile = *new AttributeProfile(AttributeProfile::Build(
      "sony cybershot dsc w55 digital camera 7.2 megapixel silver"));
  return profile;
}

const AttributeProfile& RightProfile() {
  static const auto& profile = *new AttributeProfile(AttributeProfile::Build(
      "sony cyber-shot dscw55 camera 7 mp with 3x optical zoom"));
  return profile;
}

void BM_SimilarityFunction(benchmark::State& state) {
  const SimilarityFunction* function =
      AllSimilarityFunctions()[static_cast<size_t>(state.range(0))];
  state.SetLabel(std::string(function->name()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        function->Similarity(LeftProfile(), RightProfile()));
  }
}
BENCHMARK(BM_SimilarityFunction)->DenseRange(0, kNumSimilarityFunctions - 1);

void BM_ProfileBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttributeProfile::Build(
        "sony cybershot dsc w55 digital camera 7.2 megapixel silver"));
  }
}
BENCHMARK(BM_ProfileBuild);

void BM_FullFeatureVector(benchmark::State& state) {
  static const auto& dataset =
      *new EmDataset(GenerateDataset(AbtBuyProfile(), 7, 0.2));
  static const auto& extractor = *new FeatureExtractor(dataset);
  std::vector<float> features(extractor.num_dims());
  uint32_t left = 0;
  for (auto _ : state) {
    extractor.ExtractPair(
        RecordPair{left % static_cast<uint32_t>(dataset.left.num_rows()), 0},
        features.data());
    benchmark::DoNotOptimize(features.data());
    ++left;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(extractor.num_dims()));
}
BENCHMARK(BM_FullFeatureVector);

}  // namespace
}  // namespace alem
