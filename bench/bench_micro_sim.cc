// Micro-benchmarks: throughput of each similarity function and of full
// feature-vector extraction (google-benchmark).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "features/feature_extractor.h"
#include "kernels/backend.h"
#include "sim/similarity.h"
#include "synth/generator.h"
#include "synth/profiles.h"

namespace alem {
namespace {

const AttributeProfile& LeftProfile() {
  static const auto& profile = *new AttributeProfile(AttributeProfile::Build(
      "sony cybershot dsc w55 digital camera 7.2 megapixel silver"));
  return profile;
}

const AttributeProfile& RightProfile() {
  static const auto& profile = *new AttributeProfile(AttributeProfile::Build(
      "sony cyber-shot dscw55 camera 7 mp with 3x optical zoom"));
  return profile;
}

void BM_SimilarityFunction(benchmark::State& state) {
  const SimilarityFunction* function =
      AllSimilarityFunctions()[static_cast<size_t>(state.range(0))];
  state.SetLabel(std::string(function->name()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        function->Similarity(LeftProfile(), RightProfile()));
  }
}
BENCHMARK(BM_SimilarityFunction)->DenseRange(0, kNumSimilarityFunctions - 1);

void BM_ProfileBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttributeProfile::Build(
        "sony cybershot dsc w55 digital camera 7.2 megapixel silver"));
  }
}
BENCHMARK(BM_ProfileBuild);

void BM_FullFeatureVector(benchmark::State& state) {
  static const auto& dataset =
      *new EmDataset(GenerateDataset(AbtBuyProfile(), 7, 0.2));
  static const auto& extractor = *new FeatureExtractor(dataset);
  std::vector<float> features(extractor.num_dims());
  uint32_t left = 0;
  for (auto _ : state) {
    extractor.ExtractPair(
        RecordPair{left % static_cast<uint32_t>(dataset.left.num_rows()), 0},
        features.data());
    benchmark::DoNotOptimize(features.data());
    ++left;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(extractor.num_dims()));
}
BENCHMARK(BM_FullFeatureVector);

// ---- Per-backend kernel rows (docs/kernels.md) -------------------------
//
// EvaluateBatch over a fixed pair pool for the kernel-dispatched edit
// similarities, one row per kernel backend plus "auto", so the JSON
// trajectory shows per-backend speedups of the token-similarity chunk.
// Registered at runtime because the backend list is a host property.

struct SimBatchPool {
  std::vector<AttributeProfile> profiles;
  std::vector<const AttributeProfile*> left;
  std::vector<const AttributeProfile*> right;
};

const SimBatchPool& BatchPool() {
  static const SimBatchPool& pool = *new SimBatchPool([] {
    SimBatchPool p;
    const std::string samples[] = {
        "sony cybershot dsc w55 digital camera 7.2 megapixel silver",
        "sony cyber-shot dscw55 camera 7 mp with 3x optical zoom",
        "canon powershot sx130is 12.1 mp digital camera black",
        "kx-200 zoom lens kit for digital slr cameras",
        "299.99", "olympus stylus tough waterproof shockproof camera",
        "panasonic lumix dmc-fz35 12 megapixel bridge camera",
        "x"};
    for (const std::string& s : samples) {
      p.profiles.push_back(AttributeProfile::Build(s));
    }
    while (p.left.size() < 512) {
      for (const AttributeProfile& a : p.profiles) {
        for (const AttributeProfile& b : p.profiles) {
          p.left.push_back(&a);
          p.right.push_back(&b);
        }
      }
    }
    return p;
  }());
  return pool;
}

void RunSimBatchBackend(benchmark::State& state, const std::string& function,
                        const std::string& backend) {
  std::string error;
  if (!kernels::SetBackend(backend, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  const int index = SimilarityIndexByName(function);
  const SimilarityFunction* sim =
      AllSimilarityFunctions()[static_cast<size_t>(index)];
  const SimBatchPool& pool = BatchPool();
  std::vector<float> out(pool.left.size());
  for (auto _ : state) {
    sim->EvaluateBatch(pool.left, pool.right, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pool.left.size()));
  // Roofline-style derived throughput per backend row: pairs scored per
  // second, matching the "sim.batch" region of the report profile section.
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(pool.left.size()),
      benchmark::Counter::kIsRate);
  kernels::SetBackend("auto", nullptr);
}

[[maybe_unused]] const int kSimBackendBenches = [] {
  std::vector<std::string> backends;
  for (const std::string_view name : kernels::AvailableBackendNames()) {
    backends.emplace_back(name);
  }
  backends.emplace_back("auto");
  for (const std::string& backend : backends) {
    // The kernel-dispatched edit similarities: Jaro/JaroWinkler exercise
    // the match-scan kernel, Levenshtein the DP-row kernel, MongeElkan the
    // scan kernel across its token cross product.
    for (const char* function :
         {"Jaro", "JaroWinkler", "Levenshtein", "MongeElkan"}) {
      benchmark::RegisterBenchmark(
          ("BM_SimBatch_" + std::string(function) + "/backend:" + backend)
              .c_str(),
          [function, backend](benchmark::State& state) {
            RunSimBatchBackend(state, function, backend);
          });
    }
  }
  return 0;
}();

}  // namespace
}  // namespace alem
