// Regenerates Fig. 11: effect of blocking and active ensembles on linear
// classifiers — progressive F1 on the five perfect-oracle datasets.
// Paper shape: Margin(1Dim) tracks the all-dims baseline everywhere except
// Cora; the ensemble gives a small boost on some datasets (Abt-Buy,
// DBLP-ACM) and no gain (or a small loss) on others — the fixed tau = 0.85
// precision gate is not equally suited to every dataset.

#include <cstdio>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 11: Effect of Blocking and Active Ensemble on Linear "
      "Classifiers (Progressive F1, Perfect Oracle)",
      "Margin(1Dim) = selection-time blocking; Ensemble = tau 0.85 gate");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const double scale = b::ScaleFromEnv();

  const SynthProfile profiles[] = {AbtBuyProfile(), AmazonGoogleProfile(),
                                   DblpAcmProfile(), DblpScholarProfile(),
                                   CoraProfile()};
  for (const SynthProfile& profile : profiles) {
    const PreparedDataset data = PrepareDataset({profile, 7, scale});
    const std::string all_dims =
        "Margin(" + std::to_string(data.float_features.dims()) + "Dim)";

    const RunResult blocked = b::Run(data, LinearMarginSpec(1), max_labels);
    const RunResult full = b::Run(data, LinearMarginSpec(0), max_labels);
    const RunResult ensemble =
        b::Run(data, LinearMarginEnsembleSpec(), max_labels);

    b::PrintSeriesTable(profile.name,
                        {b::CurveF1("Margin(1Dim)", blocked.curve),
                         b::CurveF1(all_dims, full.curve),
                         b::CurveF1("Margin(Ens)", ensemble.curve)});
    std::printf("#AcceptedSVMs = %zu\n", ensemble.ensemble_accepted);
  }
  return 0;
}
