// Ablation (DESIGN.md §5.2): number of blocking dimensions K for
// selection-time blocking (Section 5.1 of the paper). K = 0 disables
// blocking (equivalent to using every dimension). Small K prunes more
// margin computations; quality should stay flat until K gets so small that
// informative ambiguous examples are pruned away.

#include <cstdio>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader("Ablation: blocking dimensions K (Linear-Margin, Abt-Buy)",
                 "pruned%% = margin computations skipped by blocking");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  std::printf("%8s %8s %14s %10s %16s\n", "K", "bestF1", "labels@conv",
              "pruned%", "scoringTime(s)");
  for (const size_t k : {size_t{1}, size_t{2}, size_t{5}, size_t{10},
                         size_t{0}}) {
    const RunResult result = b::Run(data, LinearMarginSpec(k), max_labels);
    size_t scored = 0;
    size_t pruned = 0;
    double scoring_seconds = 0.0;
    for (const IterationStats& stats : result.curve) {
      scored += stats.scored_examples;
      pruned += stats.pruned_examples;
      scoring_seconds += stats.scoring_seconds;
    }
    const double pruned_percent =
        scored + pruned == 0
            ? 0.0
            : 100.0 * static_cast<double>(pruned) /
                  static_cast<double>(scored + pruned);
    std::printf("%8s %8.3f %14zu %10.1f %16.4f\n",
                k == 0 ? "all" : std::to_string(k).c_str(), result.best_f1,
                result.labels_to_converge, pruned_percent, scoring_seconds);
  }
  return 0;
}
