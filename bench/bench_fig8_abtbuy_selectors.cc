// Regenerates Fig. 8: QBC vs. Margin progressive F1 on Abt-Buy, one panel
// per classifier family:
//   (a) non-convex non-linear (neural network): QBC(2) vs Margin
//   (b) linear (SVM): QBC(2), QBC(20), Margin (all dims)
//   (c) tree-based: Trees(2), Trees(10), Trees(20) with learner-aware QBC.

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader("Fig. 8: QBC vs. Margin (Progressive F1, Abt-Buy)",
                 "Paper shape: margin ~= QBC per learner; Trees(20) -> ~1.0");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  // (a) Non-convex non-linear.
  {
    const RunResult qbc = b::Run(data, NeuralQbcSpec(2), max_labels);
    const RunResult margin = b::Run(data, NeuralMarginSpec(), max_labels);
    b::PrintSeriesTable("(a) Non-Convex Non-Linear",
                        {b::CurveF1("QBC(2)", qbc.curve),
                         b::CurveF1("Margin", margin.curve)});
  }
  // (b) Linear.
  {
    const RunResult qbc2 = b::Run(data, LinearQbcSpec(2), max_labels);
    const RunResult qbc20 = b::Run(data, LinearQbcSpec(20), max_labels);
    const RunResult margin = b::Run(data, LinearMarginSpec(0), max_labels);
    b::PrintSeriesTable("(b) Linear Classifier",
                        {b::CurveF1("QBC(2)", qbc2.curve),
                         b::CurveF1("QBC(20)", qbc20.curve),
                         b::CurveF1("Margin(63Dim)", margin.curve)});
  }
  // (c) Tree-based (the forest is the committee).
  {
    const RunResult t2 = b::Run(data, TreesSpec(2), max_labels);
    const RunResult t10 = b::Run(data, TreesSpec(10), max_labels);
    const RunResult t20 = b::Run(data, TreesSpec(20), max_labels);
    b::PrintSeriesTable("(c) Tree-based Classifier",
                        {b::CurveF1("Trees(2)", t2.curve),
                         b::CurveF1("Trees(10)", t10.curve),
                         b::CurveF1("Trees(20)", t20.curve)});
  }
  return 0;
}
