// Shared helpers for the per-figure/per-table benchmark harnesses.
//
// Every harness prints the same series the corresponding paper figure plots
// (x = #labeled examples, y = metric), as aligned text tables. Environment
// knobs let users scale runs up toward paper-sized experiments:
//   ALEM_SCALE      dataset size multiplier        (default 1.0)
//   ALEM_MAX_LABELS label budget per run           (default per-bench)
//   ALEM_RUNS       repetitions for noisy oracles  (default per-bench)
//   ALEM_THREADS    worker threads for committee fits / example scoring /
//                   forest fits (default hardware concurrency; 1 = serial;
//                   results are identical at any count)
//   ALEM_CSV_DIR    when set, every printed series table is also written
//                   as <dir>/<sanitized title>.csv for plotting
//   ALEM_TRACE_DIR  when set, enables the obs subsystem and writes
//                   <dir>/<sanitized artifact>.trace.json (Chrome trace,
//                   Perfetto-loadable) and <dir>/<...>.metrics.csv at exit,
//                   so every paper-figure bench emits a trace alongside
//                   its CSV (see docs/observability.md)
//   ALEM_REPORT_DIR when set, enables the obs subsystem and writes the
//                   "bench"-kind RunReport flight-recorder JSON
//                   (<dir>/<sanitized artifact>.report.json: build stamp,
//                   counters, span self-time rollup, wall/peak-RSS totals)
//                   at exit; `alem_report aggregate <dir>` rolls a
//                   directory of these into BENCH_alembench.json
//   ALEM_CACHE_DIR  when set, PrepareDataset persists each float feature
//                   matrix there and reloads it on subsequent runs
//                   (content-addressed, so profile/seed/scale/similarity
//                   changes invalidate automatically; --no-cache-style
//                   opt-out is per-call via PrepareOptions::use_cache;
//                   see docs/featurization.md)

#ifndef ALEM_BENCH_BENCH_UTIL_H_
#define ALEM_BENCH_BENCH_UTIL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/active_loop.h"
#include "core/harness.h"

namespace alem {
namespace bench {

double ScaleFromEnv(double default_scale = 1.0);
size_t MaxLabelsFromEnv(size_t default_labels);
size_t RunsFromEnv(size_t default_runs);

// Prints the bench banner: which paper artifact this regenerates, the
// workload parameters in effect, and the build (git describe) the numbers
// are attributable to. When ALEM_TRACE_DIR / ALEM_REPORT_DIR is set this
// also switches tracing + metrics on and registers an at-exit export of
// the trace/metrics/report artifacts into those directories.
void PrintHeader(const std::string& artifact, const std::string& description);

// The compile-time git identity baked into this binary ("unknown" when the
// build tree had no git metadata).
const char* BuildGitSha();

// One plotted line: (x = #labels, y = value) points.
struct Series {
  std::string name;
  std::vector<std::pair<size_t, double>> points;
};

Series CurveF1(const std::string& name,
               const std::vector<IterationStats>& curve);
Series CurveWaitSeconds(const std::string& name,
                        const std::vector<IterationStats>& curve);
Series CurveCommitteeSeconds(const std::string& name,
                             const std::vector<IterationStats>& curve);
Series CurveScoringSeconds(const std::string& name,
                           const std::vector<IterationStats>& curve);
Series CurveDnfAtoms(const std::string& name,
                     const std::vector<IterationStats>& curve);
Series CurveTreeDepth(const std::string& name,
                      const std::vector<IterationStats>& curve);

// Prints series side by side on a #labels grid; shorter series are padded
// with their final value (an approach that terminated keeps its result).
void PrintSeriesTable(const std::string& title,
                      const std::vector<Series>& series, int value_digits = 3);

// Prints a mean / p50 / p95 / p99 summary row per series over the y values
// (nearest-rank percentiles on a sorted copy) — the tail view next to the
// per-iteration tables, since means hide exactly the latency spikes the
// user-wait figures are about.
void PrintSeriesPercentiles(const std::string& title,
                            const std::vector<Series>& series,
                            int value_digits = 3);

// Convenience: run one approach on a prepared dataset with common settings.
RunResult Run(const PreparedDataset& data, const ApproachSpec& spec,
              size_t max_labels, double noise = 0.0, bool holdout = false,
              uint64_t run_seed = 1);

}  // namespace bench
}  // namespace alem

#endif  // ALEM_BENCH_BENCH_UTIL_H_
