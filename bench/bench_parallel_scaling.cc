// Thread-pool scaling harness: end-to-end active-learning throughput at
// 1/2/4/8 worker threads. Exercises the three parallelized hot paths —
// bootstrap-committee fits, per-example committee/margin scoring, and
// per-tree forest fits — and asserts the determinism contract along the
// way: every thread count must reproduce the threads=1 curve bit for bit.
// Writes BENCH_parallel.json (into ALEM_CSV_DIR when set, else the cwd)
// with per-thread-count wall seconds and speedups.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/approaches.h"
#include "parallel/pool.h"
#include "synth/profiles.h"

namespace {

struct ScalingPoint {
  int threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;
};

struct Workload {
  std::string name;
  std::vector<ScalingPoint> points;
  bool deterministic = true;
};

// Curves must agree exactly — same lengths, same selections (visible through
// labels_used), same float-for-float metrics.
bool SameCurve(const alem::RunResult& a, const alem::RunResult& b) {
  if (a.curve.size() != b.curve.size()) return false;
  for (size_t i = 0; i < a.curve.size(); ++i) {
    if (a.curve[i].labels_used != b.curve[i].labels_used) return false;
    if (a.curve[i].metrics.f1 != b.curve[i].metrics.f1) return false;
    if (a.curve[i].metrics.precision != b.curve[i].metrics.precision) {
      return false;
    }
    if (a.curve[i].metrics.recall != b.curve[i].metrics.recall) return false;
  }
  return a.best_f1 == b.best_f1;
}

}  // namespace

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Parallel scaling: committee fits, example scoring, forest fits",
      "wall seconds per full active-learning run at 1/2/4/8 threads; every "
      "thread count must reproduce the threads=1 curve exactly");

  const double scale = b::ScaleFromEnv();
  const size_t max_labels = b::MaxLabelsFromEnv(120);
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::printf("hardware threads: %d\n\n", parallel::HardwareThreads());

  const PreparedDataset data = PrepareDataset({AbtBuyProfile(), 7, scale});

  struct Spec {
    const char* name;
    ApproachSpec approach;
  };
  const std::vector<Spec> specs = {
      {"linear-qbc8", LinearQbcSpec(8)},   // Committee fits + QBC scoring.
      {"trees10", TreesSpec(10)},          // Forest fits + vote scoring.
      {"linear-margin", LinearMarginSpec(0)},  // Pure margin scoring.
  };

  std::vector<Workload> workloads;
  for (const Spec& spec : specs) {
    Workload workload;
    workload.name = spec.name;
    RunResult baseline;
    for (const int threads : thread_counts) {
      parallel::SetNumThreads(threads);
      const auto start = std::chrono::steady_clock::now();
      const RunResult result = b::Run(data, spec.approach, max_labels);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (threads == 1) {
        baseline = result;
      } else if (!SameCurve(baseline, result)) {
        workload.deterministic = false;
      }
      ScalingPoint point;
      point.threads = threads;
      point.seconds = seconds;
      point.speedup = workload.points.empty()
                          ? 1.0
                          : workload.points.front().seconds / seconds;
      workload.points.push_back(point);
    }
    parallel::SetNumThreads(1);

    std::printf("--- %s (best F1 %.3f) ---\n", workload.name.c_str(),
                baseline.best_f1);
    std::printf("%8s  %12s  %8s\n", "threads", "seconds", "speedup");
    for (const ScalingPoint& point : workload.points) {
      std::printf("%8d  %12.3f  %7.2fx\n", point.threads, point.seconds,
                  point.speedup);
    }
    std::printf("deterministic across thread counts: %s\n\n",
                workload.deterministic ? "yes" : "NO (BUG)");
    workloads.push_back(std::move(workload));
  }

  // Machine-readable summary for EXPERIMENTS.md / CI trend lines.
  const char* dir = std::getenv("ALEM_CSV_DIR");
  const std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string())
      + "BENCH_parallel.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"build\": \"%s\",\n", b::BuildGitSha());
    std::fprintf(out, "  \"hardware_threads\": %d,\n",
                 parallel::HardwareThreads());
    std::fprintf(out, "  \"scale\": %.3f,\n  \"max_labels\": %zu,\n", scale,
                 max_labels);
    std::fprintf(out, "  \"workloads\": [\n");
    for (size_t w = 0; w < workloads.size(); ++w) {
      const Workload& workload = workloads[w];
      std::fprintf(out, "    {\"name\": \"%s\", \"deterministic\": %s,\n",
                   workload.name.c_str(),
                   workload.deterministic ? "true" : "false");
      std::fprintf(out, "     \"points\": [");
      for (size_t p = 0; p < workload.points.size(); ++p) {
        const ScalingPoint& point = workload.points[p];
        std::fprintf(out,
                     "%s{\"threads\": %d, \"seconds\": %.6f, "
                     "\"speedup\": %.3f}",
                     p == 0 ? "" : ", ", point.threads, point.seconds,
                     point.speedup);
      }
      std::fprintf(out, "]}%s\n", w + 1 < workloads.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("(json written to %s)\n", path.c_str());
  }

  bool all_deterministic = true;
  for (const Workload& workload : workloads) {
    all_deterministic = all_deterministic && workload.deterministic;
  }
  return all_deterministic ? 0 : 1;
}
