// Regenerates Fig. 18 and the Section 6.3 rule listing: interpretability of
// trees vs rules on Abt-Buy.
//   (a) #DNF atoms vs #labels for Trees(2/10/20) and Rules(LFP/LFN)
//   (b) maximum tree depth vs #labels
// plus the final DNF rule ensemble learned by LFP/LFN, pretty-printed the
// way the paper lists its Abt-Buy rules.
// Paper shape: tree atom counts grow into the thousands while rules stay at
// a handful of atoms; depth grows with labels and forest size.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/active_loop.h"
#include "core/evaluator.h"
#include "core/oracle.h"
#include "core/pool.h"
#include "core/selector.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 18: Interpretability — #DNF Atoms and Tree Depth vs #Labels "
      "(Abt-Buy)",
      "atoms counted with repetition over root-to-positive-leaf paths");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const PreparedDataset data =
      PrepareDataset({AbtBuyProfile(), 7, b::ScaleFromEnv()});

  const RunResult t2 = b::Run(data, TreesSpec(2), max_labels);
  const RunResult t10 = b::Run(data, TreesSpec(10), max_labels);
  const RunResult t20 = b::Run(data, TreesSpec(20), max_labels);
  const RunResult rules = b::Run(data, RulesLfpLfnSpec(), max_labels);

  b::PrintSeriesTable("(a) #DNF Atoms vs #Labels",
                      {b::CurveDnfAtoms("Trees(2)", t2.curve),
                       b::CurveDnfAtoms("Trees(10)", t10.curve),
                       b::CurveDnfAtoms("Trees(20)", t20.curve),
                       b::CurveDnfAtoms("Rules", rules.curve)},
                      0);
  b::PrintSeriesTable("(b) Depth of Tree-based Classifiers",
                      {b::CurveTreeDepth("Trees(2)", t2.curve),
                       b::CurveTreeDepth("Trees(10)", t10.curve),
                       b::CurveTreeDepth("Trees(20)", t20.curve)},
                      0);

  // Re-run the rule learner to hold on to the final model, then print the
  // learned DNF ensemble like the paper's Abt-Buy listing.
  {
    ActivePool pool(data.boolean_features);
    PerfectOracle oracle(data.truth);
    ProgressiveEvaluator evaluator(data.truth);
    RuleLearner learner;
    LfpLfnSelector selector;
    ActiveLearningConfig config;
    config.max_labels = max_labels;
    ActiveLearningLoop loop(learner, selector, oracle, evaluator, config);
    loop.Run(pool);
    std::printf("\nLearned rule ensemble (Abt-Buy, #DNF atoms = %zu):\n  %s\n",
                learner.dnf().NumAtoms(),
                learner.dnf().ToString(*data.featurizer).c_str());
  }
  return 0;
}
