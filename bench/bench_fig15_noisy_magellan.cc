// Regenerates Fig. 15: Trees(20) on the Magellan/DeepMatcher datasets under
// noisy Oracles (progressive F1, noise 0..40%).
// Paper shape: with a perfect Oracle the small datasets (Amazon-BestBuy,
// Beer) converge near 1.0 within ~100 labels, while Walmart-Amazon and
// BabyProducts need substantially more labels; under noise the curves
// degrade with noise level.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 15: Tree Ensembles on Magellan/DeepMatcher Datasets "
      "(Noisy Oracles, Progressive F1)",
      "Trees(20), mean F1 over repeated runs");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const size_t runs = b::RunsFromEnv(3);
  const double scale = b::ScaleFromEnv();
  const double noises[] = {0.0, 0.1, 0.2, 0.3, 0.4};

  const SynthProfile profiles[] = {WalmartAmazonProfile(),
                                   AmazonBestBuyProfile(), BeerProfile(),
                                   BabyProductsProfile()};
  for (const SynthProfile& profile : profiles) {
    const PreparedDataset data = PrepareDataset({profile, 7, scale});
    std::vector<b::Series> series;
    for (const double noise : noises) {
      std::vector<std::vector<IterationStats>> curves;
      for (size_t run = 0; run < runs; ++run) {
        curves.push_back(
            b::Run(data, TreesSpec(20), max_labels, noise, false, 100 + run)
                .curve);
      }
      b::Series s;
      s.name = std::to_string(static_cast<int>(noise * 100)) + "%";
      for (const AveragedPoint& point : AverageCurves(curves)) {
        s.points.emplace_back(point.labels, point.mean_f1);
      }
      series.push_back(std::move(s));
    }
    b::PrintSeriesTable(profile.name + ", Trees(20)", series);
  }
  return 0;
}
