// Regenerates Fig. 13: user wait time (training + example selection) per
// iteration for the best variant of each classifier family, on the five
// perfect-oracle datasets.
// Paper shape: rules and NN wait longest (rule execution / long training),
// forests shortest despite training 20 trees (learner-aware committees);
// SVM ensembles start cheap and grow with the labeled set.

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 13: Comparison of Classifiers with Best Selection Strategies "
      "(User Wait Time, seconds per iteration)",
      "wait = train + committee creation + example scoring");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const double scale = b::ScaleFromEnv();

  struct Panel {
    SynthProfile profile;
    bool nn_uses_qbc;
    bool linear_uses_ensemble;
  };
  const Panel panels[] = {
      {AbtBuyProfile(), false, true},
      {AmazonGoogleProfile(), false, false},
      {DblpAcmProfile(), false, true},
      {DblpScholarProfile(), false, false},
      {CoraProfile(), true, true},
  };

  for (const Panel& panel : panels) {
    const PreparedDataset data = PrepareDataset({panel.profile, 7, scale});
    const ApproachSpec nn =
        panel.nn_uses_qbc ? NeuralQbcSpec(2) : NeuralMarginSpec();
    const ApproachSpec linear = panel.linear_uses_ensemble
                                    ? LinearMarginEnsembleSpec()
                                    : LinearMarginSpec(1);
    const RunResult nn_run = b::Run(data, nn, max_labels);
    const RunResult linear_run = b::Run(data, linear, max_labels);
    const RunResult trees_run = b::Run(data, TreesSpec(20), max_labels);
    const RunResult rules_run = b::Run(data, RulesLfpLfnSpec(), max_labels);

    const std::vector<b::Series> waits = {
        b::CurveWaitSeconds(nn_run.approach_name, nn_run.curve),
        b::CurveWaitSeconds(linear_run.approach_name, linear_run.curve),
        b::CurveWaitSeconds("Trees(20)", trees_run.curve),
        b::CurveWaitSeconds("Rules", rules_run.curve)};
    b::PrintSeriesTable(panel.profile.name + " (seconds)", waits, 5);
    // Tail view: the paper plots per-iteration waits, but a deployment
    // cares about the worst iterations a labeler sits through.
    b::PrintSeriesPercentiles(
        panel.profile.name + " wait percentiles (seconds)", waits, 5);
  }
  return 0;
}
