// Regenerates Fig. 12: best example selector per classifier family compared
// across the five perfect-oracle datasets (progressive F1).
// Paper shape: Trees(20) dominates everywhere; rules terminate earliest and
// score lowest; linear/NN land in between.

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Fig. 12: Comparison of Classifiers with Best Selection Strategies "
      "(Progressive F1, Perfect Oracle)",
      "NN-Margin (NN-QBC(2) on Cora), Linear-Margin(Ensemble or 1Dim), "
      "Trees(20), Rules(LFP/LFN)");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const double scale = b::ScaleFromEnv();

  struct Panel {
    SynthProfile profile;
    bool nn_uses_qbc;        // Cora: NN-QBC(2) is the best NN variant.
    bool linear_uses_ensemble;  // Else Margin(1Dim), per the paper's picks.
  };
  const Panel panels[] = {
      {AbtBuyProfile(), false, true},
      {AmazonGoogleProfile(), false, false},
      {DblpAcmProfile(), false, true},
      {DblpScholarProfile(), false, false},
      {CoraProfile(), true, true},
  };

  for (const Panel& panel : panels) {
    const PreparedDataset data = PrepareDataset({panel.profile, 7, scale});
    const ApproachSpec nn =
        panel.nn_uses_qbc ? NeuralQbcSpec(2) : NeuralMarginSpec();
    const ApproachSpec linear = panel.linear_uses_ensemble
                                    ? LinearMarginEnsembleSpec()
                                    : LinearMarginSpec(1);
    const RunResult nn_run = b::Run(data, nn, max_labels);
    const RunResult linear_run = b::Run(data, linear, max_labels);
    const RunResult trees_run = b::Run(data, TreesSpec(20), max_labels);
    const RunResult rules_run = b::Run(data, RulesLfpLfnSpec(), max_labels);

    b::PrintSeriesTable(
        panel.profile.name,
        {b::CurveF1(nn_run.approach_name, nn_run.curve),
         b::CurveF1(linear_run.approach_name, linear_run.curve),
         b::CurveF1("Trees(20)", trees_run.curve),
         b::CurveF1("Rules", rules_run.curve)});
  }
  return 0;
}
