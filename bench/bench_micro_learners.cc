// Micro-benchmarks: training and prediction throughput of every learner at
// active-learning-realistic training-set sizes (google-benchmark).
//
// The *PoolBatch cases drive the batch inference engine (Learner::
// PredictBatch / ProbaBatch / MarginBatch fanned out under ml.batch) against
// the scalar per-row loops right above them; the Arg is the thread count.
// Emit a comparable artifact with:
//   bench_micro_learners --benchmark_out=BENCH_micro_learners.json \
//       --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <numeric>
#include <string>

#include "core/harness.h"
#include "core/learner.h"
#include "kernels/backend.h"
#include "ml/dnf_rule.h"
#include "ml/linear_svm.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "parallel/pool.h"
#include "synth/profiles.h"

namespace alem {
namespace {

// Shared prepared dataset (Abt-Buy at reduced scale).
const PreparedDataset& Data() {
  static const auto& data =
      *new PreparedDataset(PrepareDataset({AbtBuyProfile(), 7, 0.4}));
  return data;
}

// Training rows: the first `n` post-blocking pairs (mixed labels).
struct TrainingSlice {
  FeatureMatrix features;
  std::vector<int> labels;
};

TrainingSlice SliceOf(size_t n, bool boolean_features) {
  const PreparedDataset& data = Data();
  n = std::min(n, data.pairs.size());
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  TrainingSlice slice;
  slice.features = (boolean_features ? data.boolean_features
                                     : data.float_features)
                       .Gather(rows);
  slice.labels.assign(data.truth.begin(),
                      data.truth.begin() + static_cast<long>(n));
  return slice;
}

void BM_SvmFit(benchmark::State& state) {
  const TrainingSlice slice =
      SliceOf(static_cast<size_t>(state.range(0)), false);
  LinearSvm model(LinearSvmConfig{});
  for (auto _ : state) {
    model.Fit(slice.features, slice.labels);
    benchmark::DoNotOptimize(model.bias());
  }
}
BENCHMARK(BM_SvmFit)->Arg(100)->Arg(300);

void BM_ForestFit(benchmark::State& state) {
  const TrainingSlice slice =
      SliceOf(static_cast<size_t>(state.range(1)), false);
  RandomForestConfig config;
  config.num_trees = static_cast<int>(state.range(0));
  RandomForest model(config);
  for (auto _ : state) {
    model.Fit(slice.features, slice.labels);
    benchmark::DoNotOptimize(model.trees().size());
  }
}
BENCHMARK(BM_ForestFit)->Args({10, 300})->Args({20, 300});

void BM_NeuralNetFit(benchmark::State& state) {
  const TrainingSlice slice =
      SliceOf(static_cast<size_t>(state.range(0)), false);
  NeuralNetwork model(NeuralNetConfig{});
  for (auto _ : state) {
    model.Fit(slice.features, slice.labels);
    benchmark::DoNotOptimize(model.trained());
  }
}
BENCHMARK(BM_NeuralNetFit)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

// ---- Warm-start refits vs. cold refits (docs/training.md) --------------
//
// Models one Fig. 10-style growth step: a model trained on the first `n`
// labeled rows is refit after one batch (10 rows) of new labels arrives.
// Arg 0 is n, arg 1 selects the path (0 = cold Fit on n+10, as
// --warm-start=off does every iteration; 1 = FitWarm from the n-row model,
// the --warm-start=on path). The `fits_per_sec` rate is the comparable
// number across the pair; the warm/cold ratio is the per-iteration training
// speedup the incremental engine buys. Warm rows pay a PauseTiming'd
// re-seed per iteration so every timed refit starts from the same
// trained-at-n state.

void BM_SvmFitWarmVsCold(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool warm = state.range(1) != 0;
  const TrainingSlice early = SliceOf(n, false);
  const TrainingSlice grown = SliceOf(n + 10, false);
  LinearSvm model(LinearSvmConfig{});
  for (auto _ : state) {
    if (warm) {
      state.PauseTiming();
      model.Fit(early.features, early.labels);
      state.ResumeTiming();
      model.FitWarm(grown.features, grown.labels);
    } else {
      model.Fit(grown.features, grown.labels);
    }
    benchmark::DoNotOptimize(model.bias());
  }
  state.counters["fits_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SvmFitWarmVsCold)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({300, 0})
    ->Args({300, 1});

void BM_NeuralNetFitWarmVsCold(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool warm = state.range(1) != 0;
  const TrainingSlice early = SliceOf(n, false);
  const TrainingSlice grown = SliceOf(n + 10, false);
  NeuralNetwork model(NeuralNetConfig{});
  for (auto _ : state) {
    if (warm) {
      state.PauseTiming();
      model.Fit(early.features, early.labels);
      state.ResumeTiming();
      model.FitWarm(grown.features, grown.labels);
    } else {
      model.Fit(grown.features, grown.labels);
    }
    benchmark::DoNotOptimize(model.trained());
  }
  state.counters["fits_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NeuralNetFitWarmVsCold)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({300, 0})
    ->Args({300, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ForestFitWarmVsCold(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool warm = state.range(1) != 0;
  const TrainingSlice early = SliceOf(n, false);
  const TrainingSlice grown = SliceOf(n + 10, false);
  RandomForestConfig config;
  config.num_trees = 20;
  RandomForest model(config);
  for (auto _ : state) {
    if (warm) {
      state.PauseTiming();
      RandomForest fresh(config);
      fresh.FitWarm(early.features, early.labels);
      model = std::move(fresh);
      state.ResumeTiming();
      model.FitWarm(grown.features, grown.labels);
    } else {
      model.Fit(grown.features, grown.labels);
    }
    benchmark::DoNotOptimize(model.trees().size());
  }
  state.counters["fits_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ForestFitWarmVsCold)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({300, 0})
    ->Args({300, 1});

void BM_RulesFit(benchmark::State& state) {
  const TrainingSlice slice =
      SliceOf(static_cast<size_t>(state.range(0)), true);
  DnfRuleLearner model;
  for (auto _ : state) {
    model.Fit(slice.features, slice.labels);
    benchmark::DoNotOptimize(model.dnf().conjunctions.size());
  }
}
BENCHMARK(BM_RulesFit)->Arg(100)->Arg(300);

void BM_ForestPredictPool(benchmark::State& state) {
  const TrainingSlice slice = SliceOf(300, false);
  RandomForestConfig config;
  config.num_trees = 20;
  RandomForest model(config);
  model.Fit(slice.features, slice.labels);
  const FeatureMatrix& pool = Data().float_features;
  for (auto _ : state) {
    size_t positives = 0;
    for (size_t i = 0; i < pool.rows(); ++i) {
      positives += static_cast<size_t>(model.Predict(pool.Row(i)));
    }
    benchmark::DoNotOptimize(positives);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pool.rows()));
}
BENCHMARK(BM_ForestPredictPool);

void BM_SvmMarginPool(benchmark::State& state) {
  const TrainingSlice slice = SliceOf(300, false);
  LinearSvm model(LinearSvmConfig{});
  model.Fit(slice.features, slice.labels);
  const FeatureMatrix& pool = Data().float_features;
  for (auto _ : state) {
    double sum = 0.0;
    for (size_t i = 0; i < pool.rows(); ++i) {
      sum += model.Margin(pool.Row(i));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pool.rows()));
}
BENCHMARK(BM_SvmMarginPool);

// ---- Batch inference engine vs. the scalar loops above. Arg = threads. ----

std::vector<size_t> PoolRows() {
  std::vector<size_t> rows(Data().float_features.rows());
  std::iota(rows.begin(), rows.end(), 0u);
  return rows;
}

void BM_SvmMarginPoolBatch(benchmark::State& state) {
  const TrainingSlice slice = SliceOf(300, false);
  SvmLearner learner;
  learner.Fit(slice.features, slice.labels);
  const FeatureMatrix& pool = Data().float_features;
  const std::vector<size_t> rows = PoolRows();
  std::vector<double> margins(rows.size());
  parallel::SetNumThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    learner.MarginBatch(pool, rows, margins.data());
    benchmark::DoNotOptimize(margins.data());
  }
  parallel::SetNumThreads(1);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_SvmMarginPoolBatch)->Arg(1)->Arg(4);

void BM_NeuralNetProbaPool(benchmark::State& state) {
  const TrainingSlice slice = SliceOf(300, false);
  NeuralNetwork model(NeuralNetConfig{});
  model.Fit(slice.features, slice.labels);
  const FeatureMatrix& pool = Data().float_features;
  for (auto _ : state) {
    double sum = 0.0;
    for (size_t i = 0; i < pool.rows(); ++i) {
      sum += model.PredictProbability(pool.Row(i));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pool.rows()));
}
BENCHMARK(BM_NeuralNetProbaPool);

void BM_NeuralNetProbaPoolBatch(benchmark::State& state) {
  const TrainingSlice slice = SliceOf(300, false);
  NeuralNetLearner learner;
  learner.Fit(slice.features, slice.labels);
  const FeatureMatrix& pool = Data().float_features;
  const std::vector<size_t> rows = PoolRows();
  std::vector<double> probabilities(rows.size());
  parallel::SetNumThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    learner.ProbaBatch(pool, rows, probabilities.data());
    benchmark::DoNotOptimize(probabilities.data());
  }
  parallel::SetNumThreads(1);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_NeuralNetProbaPoolBatch)->Arg(1)->Arg(4);

void BM_ForestPredictPoolBatch(benchmark::State& state) {
  const TrainingSlice slice = SliceOf(300, false);
  RandomForestConfig config;
  config.num_trees = 20;
  ForestLearner learner(config);
  learner.Fit(slice.features, slice.labels);
  const FeatureMatrix& pool = Data().float_features;
  const std::vector<size_t> rows = PoolRows();
  std::vector<int> predictions(rows.size());
  parallel::SetNumThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    learner.PredictBatch(pool, rows, predictions.data());
    benchmark::DoNotOptimize(predictions.data());
  }
  parallel::SetNumThreads(1);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_ForestPredictPoolBatch)->Arg(1)->Arg(4);

// ---- Per-backend kernel rows (docs/kernels.md) -------------------------
//
// The two kernel-dispatched batch paths — SVM margin GEMV and NN forward
// pass — timed single-threaded under each available kernel backend plus
// "auto", one JSON row per backend, so BENCH_micro_learners.json shows the
// per-backend speedup directly (results are bitwise-identical across
// backends; only the timing may differ). Registered at runtime because the
// backend list is a host property.

void RunSvmMarginBackend(benchmark::State& state, const std::string& backend) {
  std::string error;
  if (!kernels::SetBackend(backend, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  const TrainingSlice slice = SliceOf(300, false);
  SvmLearner learner;
  learner.Fit(slice.features, slice.labels);
  const FeatureMatrix& pool = Data().float_features;
  const std::vector<size_t> rows = PoolRows();
  std::vector<double> margins(rows.size());
  for (auto _ : state) {
    learner.MarginBatch(pool, rows, margins.data());
    benchmark::DoNotOptimize(margins.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
  // Derived roofline throughput for the JSON row: rows scored per second
  // and GEMV GFLOP/s (2 FLOPs per weight per row — multiply + accumulate),
  // matching the "ml.batch" accounting in the report profile section.
  const double rows_done = static_cast<double>(state.iterations()) *
                           static_cast<double>(rows.size());
  state.counters["rows_per_sec"] =
      benchmark::Counter(rows_done, benchmark::Counter::kIsRate);
  state.counters["flops_per_sec"] = benchmark::Counter(
      rows_done * 2.0 * static_cast<double>(pool.dims()),
      benchmark::Counter::kIsRate);
  kernels::SetBackend("auto", nullptr);
}

void RunNeuralNetProbaBackend(benchmark::State& state,
                              const std::string& backend) {
  std::string error;
  if (!kernels::SetBackend(backend, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  const TrainingSlice slice = SliceOf(300, false);
  NeuralNetLearner learner;
  learner.Fit(slice.features, slice.labels);
  const FeatureMatrix& pool = Data().float_features;
  const std::vector<size_t> rows = PoolRows();
  std::vector<double> probabilities(rows.size());
  for (auto _ : state) {
    learner.ProbaBatch(pool, rows, probabilities.data());
    benchmark::DoNotOptimize(probabilities.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
  // Derived roofline throughput: rows/s plus forward-pass GFLOP/s from the
  // layer shapes (2 FLOPs per weight per row, affine output included).
  const NeuralNetConfig net_config;
  double flops_per_row = 0.0;
  int in_dim = static_cast<int>(pool.dims());
  for (const int out_dim : net_config.hidden_sizes) {
    flops_per_row += 2.0 * in_dim * out_dim;
    in_dim = out_dim;
  }
  flops_per_row += 2.0 * in_dim;  // Output affine layer.
  const double rows_done = static_cast<double>(state.iterations()) *
                           static_cast<double>(rows.size());
  state.counters["rows_per_sec"] =
      benchmark::Counter(rows_done, benchmark::Counter::kIsRate);
  state.counters["flops_per_sec"] = benchmark::Counter(
      rows_done * flops_per_row, benchmark::Counter::kIsRate);
  kernels::SetBackend("auto", nullptr);
}

[[maybe_unused]] const int kLearnerBackendBenches = [] {
  std::vector<std::string> backends;
  for (const std::string_view name : kernels::AvailableBackendNames()) {
    backends.emplace_back(name);
  }
  backends.emplace_back("auto");
  for (const std::string& backend : backends) {
    benchmark::RegisterBenchmark(
        ("BM_SvmMarginPoolBatch/backend:" + backend).c_str(),
        [backend](benchmark::State& state) {
          RunSvmMarginBackend(state, backend);
        });
    benchmark::RegisterBenchmark(
        ("BM_NeuralNetProbaPoolBatch/backend:" + backend).c_str(),
        [backend](benchmark::State& state) {
          RunNeuralNetProbaBackend(state, backend);
        });
  }
  return 0;
}();

}  // namespace
}  // namespace alem
