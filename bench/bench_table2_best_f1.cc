// Regenerates Table 2: best progressive F1-scores (with #labels required to
// converge to them) for every approach x dataset cell, under perfect
// Oracles.
// Paper shape: Trees(20) tops every column at near-1.0 F1 but consumes the
// most labels; margin variants of linear classifiers match QBC variants
// with fewer labels; rules converge with the fewest labels and the lowest
// F1.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  namespace b = alem::bench;
  b::PrintHeader(
      "Table 2: Best Progressive F1-Scores (Perfect Oracle). "
      "Cell format: F1 (#labels to converge)",
      "Paper reference row Trees(20): 0.963 / 0.971 / 0.99 / 0.99 / 0.98");
  const size_t max_labels = b::MaxLabelsFromEnv(300);
  const double scale = b::ScaleFromEnv();

  const std::vector<SynthProfile> profiles = {
      AbtBuyProfile(), AmazonGoogleProfile(), DblpAcmProfile(),
      DblpScholarProfile(), CoraProfile()};
  const std::vector<ApproachSpec> approaches = {
      TreesSpec(20),
      LinearMarginEnsembleSpec(),
      LinearMarginSpec(1),  // "Linear-Margin(Blocking)" row.
      LinearQbcSpec(2),
      LinearQbcSpec(20),
      NeuralMarginSpec(),
      NeuralQbcSpec(2),
      RulesLfpLfnSpec(),
  };

  // Prepare datasets once; they are shared across rows.
  std::vector<PreparedDataset> datasets;
  datasets.reserve(profiles.size());
  for (const SynthProfile& profile : profiles) {
    datasets.push_back(PrepareDataset({profile, 7, scale}));
  }

  std::printf("%-28s", "Approach");
  for (const SynthProfile& profile : profiles) {
    std::printf(" %20s", profile.name.substr(0, 20).c_str());
  }
  std::printf("\n");

  for (const ApproachSpec& spec : approaches) {
    std::printf("%-28s", spec.DisplayName().c_str());
    for (const PreparedDataset& data : datasets) {
      const RunResult result = b::Run(data, spec, max_labels);
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.3f (%zu)", result.best_f1,
                    result.labels_to_converge);
      std::printf(" %20s", cell);
    }
    std::printf("\n");
  }
  return 0;
}
