// Regenerates Table 1: per-dataset statistics — matched columns, #total
// pairs (Cartesian), #post-blocking pairs, and post-blocking class skew —
// for the nine synthetic dataset profiles.

#include <cstdio>

#include "bench/bench_util.h"
#include "blocking/jaccard_blocking.h"
#include "synth/generator.h"
#include "synth/profiles.h"

int main() {
  using namespace alem;
  bench::PrintHeader(
      "Table 1: Details of the Public EM Datasets (synthetic analogues)",
      "Columns mirror the paper; sizes are laptop-scaled. Paper skews: "
      "0.12 / 0.09 / 0.198 / 0.109 / 0.124 / 0.083 / 0.147 / 0.151 / 0.27");
  const double scale = bench::ScaleFromEnv();

  std::printf("%-24s %9s %9s %12s %14s %10s %9s\n", "Dataset", "#Left",
              "#Right", "#TotalPairs", "#PostBlocking", "ClassSkew",
              "BlkRecall");
  for (const SynthProfile& profile : AllPublicProfiles()) {
    const EmDataset dataset = GenerateDataset(profile, 7, scale);
    const auto pairs =
        JaccardBlocking(dataset, BlockingConfig{profile.blocking_threshold});
    std::printf("%-24s %9zu %9zu %12llu %14zu %10.3f %9.3f\n",
                profile.name.c_str(), dataset.left.num_rows(),
                dataset.right.num_rows(),
                static_cast<unsigned long long>(dataset.TotalPairs()),
                pairs.size(), dataset.ClassSkew(pairs),
                BlockingRecall(dataset, pairs));
  }

  std::printf("\nMatched columns per dataset:\n");
  for (const SynthProfile& profile : AllPublicProfiles()) {
    std::printf("  %-24s {", profile.name.c_str());
    for (size_t c = 0; c < profile.columns.size(); ++c) {
      std::printf("%s%s", c > 0 ? ", " : "", profile.columns[c].name.c_str());
    }
    std::printf("}\n");
  }
  return 0;
}
