#!/usr/bin/env python3
"""End-to-end smoke test for `alem_cli session save` / `session resume`.

Runs the golden linear-margin workload three ways in separate processes:

  1. uninterrupted:  alem_cli run            --report=fresh.json
  2. first half:     alem_cli session save   --stop-after=2 --snapshot=s.alss
  3. second half:    alem_cli session resume --snapshot=s.alss (4 threads)
                                             --report=resumed.json

and asserts the stitched resumed report matches the uninterrupted one on
every deterministic field: curve (labels/precision/recall/F1, scored and
pruned example counts) and all counters, exactly. Timing fields are
wall-clock and excluded (docs/sessions.md). Also checks the resumed
report's session provenance and that a corrupted snapshot is rejected
with a clean error.

Usage: session_smoke.py --cli PATH_TO_ALEM_CLI
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

WORKLOAD = [
    "--dataset=Abt-Buy",
    "--approach=linear-margin",
    "--scale=0.25",
    "--max-labels=60",
    "--no-cache",
    "--quiet",
]

DETERMINISTIC_CURVE_FIELDS = [
    "iteration",
    "labels_used",
    "precision",
    "recall",
    "f1",
    "scored_examples",
    "pruned_examples",
    "dnf_atoms",
    "tree_depth",
    "ensemble_size",
]


def run(cmd, expect_failure=False):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if expect_failure:
        if proc.returncode == 0:
            sys.exit(f"FAIL: expected failure from {' '.join(map(str, cmd))}")
        return proc
    if proc.returncode != 0:
        sys.exit(
            f"FAIL: {' '.join(map(str, cmd))} exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", required=True, help="path to alem_cli")
    args = parser.parse_args()
    cli = Path(args.cli)

    with tempfile.TemporaryDirectory(prefix="alem_session_smoke_") as tmp:
        tmp = Path(tmp)
        snapshot = tmp / "session.alss"
        fresh_path = tmp / "fresh.report.json"
        resumed_path = tmp / "resumed.report.json"

        run([cli, "run", *WORKLOAD, "--threads=1",
             f"--report={fresh_path}"])
        run([cli, "session", "save", *WORKLOAD, "--threads=1",
             "--stop-after=2", f"--snapshot={snapshot}"])
        if not snapshot.exists():
            sys.exit("FAIL: session save wrote no snapshot")
        proc = run([cli, "session", "resume", f"--snapshot={snapshot}",
                    "--threads=4", "--no-cache",
                    f"--report={resumed_path}"])
        if "resume #1" not in proc.stdout:
            sys.exit(f"FAIL: resume banner missing:\n{proc.stdout}")

        fresh = json.loads(fresh_path.read_text())
        resumed = json.loads(resumed_path.read_text())

        if fresh["config"]["session"] != "fresh":
            sys.exit("FAIL: fresh report not stamped session=fresh")
        if resumed["config"]["session"] != "resumed":
            sys.exit("FAIL: resumed report not stamped session=resumed")
        if resumed["config"]["session_resumes"] != 1:
            sys.exit("FAIL: resumed report session_resumes != 1")

        if len(fresh["curve"]) != len(resumed["curve"]):
            sys.exit(
                f"FAIL: curve lengths differ: {len(fresh['curve'])} vs "
                f"{len(resumed['curve'])}"
            )
        for i, (a, b) in enumerate(zip(fresh["curve"], resumed["curve"])):
            for field in DETERMINISTIC_CURVE_FIELDS:
                if a[field] != b[field]:
                    sys.exit(
                        f"FAIL: curve[{i}].{field} differs: "
                        f"{a[field]} vs {b[field]}"
                    )

        counter_diffs = {
            name: (fresh["counters"].get(name), resumed["counters"].get(name))
            for name in set(fresh["counters"]) | set(resumed["counters"])
            if fresh["counters"].get(name) != resumed["counters"].get(name)
        }
        if counter_diffs:
            sys.exit(f"FAIL: counters do not stitch up: {counter_diffs}")

        # A corrupted snapshot must be rejected with a clean error.
        blob = bytearray(snapshot.read_bytes())
        blob[len(blob) // 2] ^= 0x5A
        corrupt = tmp / "corrupt.alss"
        corrupt.write_bytes(bytes(blob))
        proc = run([cli, "session", "resume", f"--snapshot={corrupt}"],
                   expect_failure=True)
        if "checksum" not in proc.stderr:
            sys.exit(f"FAIL: corrupt snapshot error not clean:\n{proc.stderr}")

    print("session smoke test OK: curve + counters stitch exactly, "
          "provenance stamped, corruption rejected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
