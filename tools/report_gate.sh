#!/bin/sh
# End-to-end regression gate over RunReport flight-recorder artifacts.
# Registered as the `report`-labeled ctest (tests/CMakeLists.txt); also
# runnable by hand after a build:
#   tools/report_gate.sh [BUILD_DIR]   (default: build)
#
# Gates, in order:
#   1. Determinism: the CLI's learning curve must be bitwise identical at
#      --threads=1 (cold, fresh feature-cache dir) and --threads=4 with
#      the cache disabled (alem_report check --exact-curve) — one check
#      covering both thread-count and cache-vs-recompute invariance.
#   2. Cache warmth: rerunning the same workload against the now-warm
#      cache must produce a bitwise-identical curve, report
#      config.cache="hit", and count exactly one featurize.cache.hit.
#   3. Quality + counters: fresh runs of all three golden workloads
#      (linear-margin, trees5, linear-qbc4) must match their committed
#      baselines within the F1 tolerance with every counter exact
#      (--counter-tol=0, including featurize.cache.*).
#   4. Sensitivity: a baseline whose F1 is perturbed beyond tolerance
#      must make the check FAIL (guards against a gate that passes
#      everything).
#   5. Bench path: a tiny bench run with ALEM_REPORT_DIR set must emit a
#      schema-valid bench report, and `alem_report aggregate` must roll
#      it into a BENCH_alembench.json.
#   6. Tail latency: a 4-thread telemetry run must produce a trace with
#      sampler counter events, a schema-valid pool section satisfying
#      the busy+idle+queue-wait ≈ worker-wall invariant, per-region
#      latency counts identical to the serial run for every region
#      present in both (deterministic structure), p95s within a generous
#      tolerance — and a perturbed-latency baseline must make
#      `check --latency-p95-tol=0` FAIL.
#   7. Kernel backends: scalar-forced reruns of all three golden
#      workloads must replay their committed baselines with every
#      counter exact, and each additional backend reported by
#      `alem_cli kernels` must reproduce the scalar linear-margin curve
#      bitwise (--exact-curve --counter-tol=0) while stamping its name
#      into config.kernel_backend — the end-to-end counterpart of the
#      kernels-labeled ctest matrix (docs/kernels.md).
#   8. Roofline profile: a --profile-regions run must replay the golden
#      baseline bitwise (profiling must not perturb results), emit a
#      schema-valid "profile" section whose work counters satisfy the
#      cross-layer invariants (sim.batch items == sim.calls, ml.batch
#      items == ml.predict_calls), stamp profile.hw as available or
#      unavailable, and aggregate into the BENCH trajectory
#      (docs/observability.md, "Profiling").
#   9. Resumable sessions: the golden linear-margin workload saved after
#      2 iterations (`alem_cli session save`) and resumed in a fresh
#      4-thread process must produce a stitched report that replays the
#      committed uninterrupted baseline with the curve exact and every
#      counter exact (--exact-curve --counter-tol=0), stamped
#      config.session="resumed" / session_resumes=1 (docs/sessions.md).
#  10. Incremental engine (docs/training.md): a --warm-start=auto run must
#      replay the committed cold baseline bitwise (cold refits +
#      incremental tally == exact replay); a --warm-start=on run must stay
#      within the F1 tolerance of it with warm/cold fit counters
#      consistent and config.warm_start stamped; and the warm run paused
#      after 2 iterations and resumed in a fresh process must replay the
#      uninterrupted warm run bitwise (warm refits are restartable; the
#      IEVL section stitches eval.rows_rescored exactly).
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Accept the build directory as absolute (ctest passes one) or relative
# to the repo root.
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac
cli="$build_dir/tools/alem_cli"
report_tool="$build_dir/tools/alem_report"
baseline_dir="$repo_root/bench/baselines"
work="$(mktemp -d "${TMPDIR:-/tmp}/alem_report_gate.XXXXXX")"
trap 'rm -rf "$work"' EXIT

for f in "$cli" "$report_tool" \
    "$baseline_dir/cli_abtbuy_linear_margin.report.json" \
    "$baseline_dir/cli_abtbuy_trees5.report.json" \
    "$baseline_dir/cli_abtbuy_linear_qbc4.report.json"; do
  if [ ! -e "$f" ]; then
    echo "error: missing $f" >&2
    exit 1
  fi
done

# The golden workload: Abt-Buy at scale 0.25, 60 labels. $1 = approach,
# $2 = threads, $3 = output report, $4... = extra flags (cache policy).
run_cli() {
  approach="$1"; threads="$2"; out="$3"; shift 3
  "$cli" run --dataset=Abt-Buy --approach="$approach" --scale=0.25 \
      --max-labels=60 --threads="$threads" --quiet --report="$out" \
      "$@" > /dev/null
}

echo "[1/10] determinism: cold cached t1 curve == uncached t4 curve"
mkdir -p "$work/cache"
run_cli linear-margin 1 "$work/t1.report.json" --cache-dir="$work/cache"
run_cli linear-margin 4 "$work/t4.report.json" --no-cache
"$report_tool" check "$work/t1.report.json" "$work/t4.report.json" \
    --exact-curve

echo "[2/10] cache warmth: warm rerun identical, provenance says hit"
run_cli linear-margin 1 "$work/warm.report.json" --cache-dir="$work/cache"
"$report_tool" check "$work/t1.report.json" "$work/warm.report.json" \
    --exact-curve
python3 "$repo_root/tools/trace_summary.py" --check \
    --report "$work/warm.report.json"
python3 - "$work/t1.report.json" "$work/warm.report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    cold = json.load(f)
with open(sys.argv[2]) as f:
    warm = json.load(f)
assert cold["config"]["cache"] == "miss", cold["config"]["cache"]
assert warm["config"]["cache"] == "hit", warm["config"]["cache"]
assert cold["counters"].get("featurize.cache.miss") == 1, cold["counters"]
assert cold["counters"].get("featurize.cache.write") == 1, cold["counters"]
assert warm["counters"].get("featurize.cache.hit") == 1, warm["counters"]
assert warm["counters"].get("featurize.cache.miss", 0) == 0, warm["counters"]
EOF

echo "[3/10] quality: three golden workloads within tolerance, counters exact"
for approach in linear-margin trees5 linear-qbc4; do
  name="$(printf '%s' "$approach" | tr '-' '_')"
  candidate="$work/cand_$name.report.json"
  if [ "$approach" = "linear-margin" ]; then
    candidate="$work/t1.report.json"  # Already produced cold above.
  else
    mkdir -p "$work/cache_$name"
    run_cli "$approach" 1 "$candidate" --cache-dir="$work/cache_$name"
  fi
  "$report_tool" check \
      "$baseline_dir/cli_abtbuy_$name.report.json" "$candidate" \
      --counter-tol=0
done

echo "[4/10] sensitivity: perturbed baseline must fail the check"
python3 - "$baseline_dir/cli_abtbuy_linear_margin.report.json" \
    "$work/perturbed.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
# Inflate the baseline far beyond the F1 tolerance so the fresh run
# appears to be a large regression.
report["summary"]["final_f1"] = min(1.0, report["summary"]["final_f1"] + 0.2)
report["summary"]["best_f1"] = min(1.0, report["summary"]["best_f1"] + 0.2)
with open(sys.argv[2], "w") as f:
    json.dump(report, f)
EOF
if "$report_tool" check "$work/perturbed.json" "$work/t1.report.json" \
    2> /dev/null; then
  echo "FAIL: check passed against a perturbed baseline" >&2
  exit 1
fi
echo "perturbed baseline rejected as expected"

echo "[5/10] bench path: ALEM_REPORT_DIR export + aggregation"
mkdir -p "$work/reports"
ALEM_REPORT_DIR="$work/reports" ALEM_SCALE=0.2 ALEM_MAX_LABELS=40 \
    ALEM_THREADS=2 "$build_dir/bench/bench_fig10d_blocking_time" \
    > /dev/null
python3 "$repo_root/tools/trace_summary.py" --check \
    --report "$work/reports"/*.report.json
(cd "$work" && "$report_tool" aggregate reports --out=BENCH_gate.json)
python3 - "$work/BENCH_gate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
assert agg["kind"] == "aggregate", agg.get("kind")
assert len(agg["reports"]) >= 1, "aggregate rolled up no reports"
EOF

echo "[6/10] tail latency: telemetry run, pool invariant, p95 determinism"
run_cli linear-margin 4 "$work/lat4.report.json" --no-cache \
    --telemetry-hz=50 --trace="$work/lat4.trace.json" \
    --metrics="$work/lat4.metrics.csv"
python3 "$repo_root/tools/trace_summary.py" --check "$work/lat4.trace.json" \
    --metrics "$work/lat4.metrics.csv" --report "$work/lat4.report.json" \
    --expect-telemetry
# Latency structure is deterministic: every region recorded in both the
# serial and the 4-thread report must observe the same number of events
# (pool-only regions like parallel.chunk are legitimately t4-only).
python3 - "$work/t1.report.json" "$work/lat4.report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    t1 = {e["name"]: e for e in json.load(f).get("latency", [])}
with open(sys.argv[2]) as f:
    t4 = {e["name"]: e for e in json.load(f).get("latency", [])}
assert t1 and t4, "latency sections missing from the gate reports"
common = sorted(set(t1) & set(t4))
assert common, "no latency regions shared between t1 and t4 reports"
for name in common:
    assert t1[name]["count"] == t4[name]["count"], (
        f"{name}: {t1[name]['count']} observations at t1 vs "
        f"{t4[name]['count']} at t4")
EOF
# Generous p95 gate between the two thread counts: catches order-of-
# magnitude tail regressions without flaking on scheduler noise.
"$report_tool" check "$work/t1.report.json" "$work/lat4.report.json" \
    --f1-tol=1 --latency-p95-tol=20
# Sensitivity: shrink every baseline p95 to ~zero; a zero-tolerance
# latency gate must then reject the candidate.
python3 - "$work/t1.report.json" "$work/lat_perturbed.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report.get("latency"), "t1 report carries no latency section"
for entry in report["latency"]:
    entry["p95_seconds"] *= 1e-9
with open(sys.argv[2], "w") as f:
    json.dump(report, f)
EOF
if "$report_tool" check "$work/lat_perturbed.json" "$work/lat4.report.json" \
    --f1-tol=1 --latency-p95-tol=0 2> /dev/null; then
  echo "FAIL: latency gate passed against a perturbed baseline" >&2
  exit 1
fi
echo "perturbed latency baseline rejected as expected"

echo "[7/10] kernel backends: scalar golden replay, per-backend equivalence"
# Scalar-forced cold runs must replay all three committed baselines with
# every counter exact — pins the scalar reference path end to end.
for approach in linear-margin trees5 linear-qbc4; do
  name="$(printf '%s' "$approach" | tr '-' '_')"
  mkdir -p "$work/cache_scalar_$name"
  run_cli "$approach" 1 "$work/scalar_$name.report.json" \
      --cache-dir="$work/cache_scalar_$name" --kernel-backend=scalar
  "$report_tool" check \
      "$baseline_dir/cli_abtbuy_$name.report.json" \
      "$work/scalar_$name.report.json" --counter-tol=0
done
# Every additional backend this host offers must reproduce the scalar
# linear-margin curve bitwise and stamp itself into config.kernel_backend.
backends="$("$cli" kernels | sed -n 's/^available: //p')"
for backend in $backends; do
  [ "$backend" = "scalar" ] && continue
  mkdir -p "$work/cache_kb_$backend"
  run_cli linear-margin 1 "$work/kb_$backend.report.json" \
      --cache-dir="$work/cache_kb_$backend" --kernel-backend="$backend"
  "$report_tool" check \
      "$work/scalar_linear_margin.report.json" \
      "$work/kb_$backend.report.json" --exact-curve --counter-tol=0
  python3 - "$work/kb_$backend.report.json" "$backend" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
stamped = report["config"].get("kernel_backend")
assert stamped == sys.argv[2], (
    f"config.kernel_backend is {stamped!r}, expected {sys.argv[2]!r}")
EOF
done
python3 - "$work/scalar_linear_margin.report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
stamped = report["config"].get("kernel_backend")
assert stamped == "scalar", (
    f"config.kernel_backend is {stamped!r}, expected 'scalar'")
EOF

echo "[8/10] roofline profile: bitwise replay, work-counter invariants"
# A profiled cold run (default curated region set) must not perturb the
# workload: the curve and every counter must replay the golden baseline
# exactly, even while HW counters and work accounting are live.
mkdir -p "$work/cache_profile"
run_cli linear-margin 1 "$work/profiled.report.json" \
    --cache-dir="$work/cache_profile" --profile-regions=
"$report_tool" check \
    "$baseline_dir/cli_abtbuy_linear_margin.report.json" \
    "$work/profiled.report.json" --exact-curve --counter-tol=0
# Schema + self-consistency of the emitted profile section.
python3 "$repo_root/tools/trace_summary.py" --check \
    --report "$work/profiled.report.json"
# Cross-layer work-counter invariants: the profile layer and the metric
# registry count the same events through independent code paths.
python3 - "$work/profiled.report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
profile = report.get("profile")
assert profile, "profiled run emitted no profile section"
assert profile["hw"] in ("available", "unavailable"), profile["hw"]
regions = {r["name"]: r for r in profile["regions"]}
expected = ("sim.batch", "ml.batch", "selector.scoring",
            "harness.featurize", "loop.evaluate")
missing = [name for name in expected if name not in regions]
assert not missing, f"default regions missing from profile: {missing}"
counters = report["counters"]
sim = regions["sim.batch"]
assert sim["items"] == counters["sim.calls"], (
    f"sim.batch items {sim['items']} != sim.calls {counters['sim.calls']}")
ml = regions["ml.batch"]
assert ml["items"] == counters["ml.predict_calls"], (
    f"ml.batch items {ml['items']} != ml.predict_calls "
    f"{counters['ml.predict_calls']}")
for name in ("sim.batch", "ml.batch"):
    region = regions[name]
    assert region["spans"] > 0, f"{name}: no spans recorded"
    assert region["seconds"] > 0, f"{name}: no wall time recorded"
    assert region["items_per_sec"] > 0, f"{name}: no throughput derived"
print(f"profile OK: hw={profile['hw']}, "
      f"sim.batch {sim['items_per_sec']:.3g} pairs/s, "
      f"ml.batch {ml['items_per_sec']:.3g} rows/s")
EOF
# The profiled report must fold into the aggregate trajectory with its
# per-region throughput summaries intact.
mkdir -p "$work/profile_reports"
cp "$work/profiled.report.json" \
    "$work/profile_reports/profiled.report.json"
(cd "$work" && "$report_tool" aggregate profile_reports \
    --out=BENCH_profile_gate.json)
python3 - "$work/BENCH_profile_gate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
entry = agg["reports"][0]
profile = entry.get("profile")
assert profile, "aggregate dropped the profile section"
names = {r["name"] for r in profile["regions"]}
assert {"sim.batch", "ml.batch"} <= names, names
assert all(r["items_per_sec"] >= 0 for r in profile["regions"])
EOF

echo "[9/10] resumable sessions: half-run save, fresh-process resume, stitch"
# Pause the golden linear-margin workload after 2 iterations (cold cache,
# matching the baseline's featurize.cache.* counters), resume it in a NEW
# process at 4 threads with the cache disabled, and require the stitched
# report to replay the committed uninterrupted baseline bitwise — curve
# exact, every counter exact (docs/sessions.md). The resume process's own
# prepare-phase counters are discarded in favor of the snapshot's, so its
# cache policy is free.
mkdir -p "$work/cache_session"
"$cli" session save --dataset=Abt-Buy --approach=linear-margin \
    --scale=0.25 --max-labels=60 --threads=1 \
    --cache-dir="$work/cache_session" \
    --snapshot="$work/gate.alss" --stop-after=2 > /dev/null
"$cli" session resume --snapshot="$work/gate.alss" --threads=4 --no-cache \
    --quiet --report="$work/resumed.report.json" > /dev/null
"$report_tool" check \
    "$baseline_dir/cli_abtbuy_linear_margin.report.json" \
    "$work/resumed.report.json" --exact-curve --counter-tol=0
python3 "$repo_root/tools/trace_summary.py" --check \
    --report "$work/resumed.report.json"
python3 - "$work/resumed.report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
config = report["config"]
assert config.get("session") == "resumed", config.get("session")
assert config.get("session_resumes") == 1, config.get("session_resumes")
EOF
echo "resumed run replays the golden baseline exactly"

echo "[10/10] incremental engine: auto bitwise, warm gated, warm resume"
# auto = incremental evaluation with cold refits: the model stream is
# untouched, so the curve and every baseline counter must replay the
# committed cold baseline exactly.
mkdir -p "$work/cache_warm_auto"
run_cli linear-margin 1 "$work/warm_auto.report.json" \
    --cache-dir="$work/cache_warm_auto" --warm-start=auto
"$report_tool" check \
    "$baseline_dir/cli_abtbuy_linear_margin.report.json" \
    "$work/warm_auto.report.json" --exact-curve --counter-tol=0
# on = warm refits: the curve is gated against a cold run by F1 tolerance,
# not bitwise. The comparison runs at 150 labels against a freshly
# generated cold reference rather than the committed 60-label baseline:
# at 60 labels the cold curve's own run-seed spread is ~0.1 F1 (last-
# iterate Pegasos noise on tiny label sets), so a tolerance able to pass
# there would gate nothing. At 150 labels both paths converge and the
# warm-vs-cold gap is within 0.05 (docs/training.md).
"$cli" run --dataset=Abt-Buy --approach=linear-margin --scale=0.25 \
    --max-labels=150 --threads=1 --quiet --no-cache --warm-start=off \
    --report="$work/warm_cold_ref.report.json" > /dev/null
"$cli" run --dataset=Abt-Buy --approach=linear-margin --scale=0.25 \
    --max-labels=150 --threads=1 --quiet --no-cache --warm-start=on \
    --report="$work/warm_on150.report.json" > /dev/null
"$report_tool" check \
    "$work/warm_cold_ref.report.json" "$work/warm_on150.report.json" \
    --f1-tol=0.05
# The 60-label warm run feeds the counter-identity asserts and the
# save/resume replay below.
mkdir -p "$work/cache_warm_on"
run_cli linear-margin 1 "$work/warm_on.report.json" \
    --cache-dir="$work/cache_warm_on" --warm-start=on
python3 "$repo_root/tools/trace_summary.py" --check \
    --report "$work/warm_on.report.json"
python3 - "$work/warm_on.report.json" "$work/warm_auto.report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    on = json.load(f)
with open(sys.argv[2]) as f:
    auto = json.load(f)
assert on["config"].get("warm_start") == "on", on["config"]
assert auto["config"].get("warm_start") == "auto", auto["config"]
for report, label in ((on, "on"), (auto, "auto")):
    c = report["counters"]
    fits = c.get("ml.fit_calls", 0)
    warm = c.get("ml.warm_fits", 0)
    cold = c.get("ml.cold_fits", 0)
    assert fits > 0 and warm + cold == fits, (
        f"{label}: warm {warm} + cold {cold} != fit_calls {fits}")
    assert c.get("eval.rows_rescored", 0) > 0, f"{label}: no rescore counter"
# Warm mode must actually take the warm path after the first (cold) fit.
assert on["counters"]["ml.warm_fits"] == on["counters"]["ml.fit_calls"] - 1, \
    on["counters"]
assert auto["counters"].get("ml.warm_fits", 0) == 0, auto["counters"]
EOF
# Warm save/resume: pause the warm run after 2 iterations and resume in a
# fresh process — the stitched report must replay the uninterrupted warm
# run bitwise (curve exact, every counter exact, including the stitched
# eval.rows_rescored carried by the IEVL snapshot section).
mkdir -p "$work/cache_warm_session"
"$cli" session save --dataset=Abt-Buy --approach=linear-margin \
    --scale=0.25 --max-labels=60 --threads=1 --warm-start=on \
    --cache-dir="$work/cache_warm_session" \
    --snapshot="$work/warm_gate.alss" --stop-after=2 > /dev/null
"$cli" session resume --snapshot="$work/warm_gate.alss" --threads=4 \
    --no-cache --quiet --report="$work/warm_resumed.report.json" > /dev/null
"$report_tool" check \
    "$work/warm_on.report.json" "$work/warm_resumed.report.json" \
    --exact-curve --counter-tol=0
python3 - "$work/warm_resumed.report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
config = report["config"]
assert config.get("session") == "resumed", config.get("session")
assert config.get("warm_start") == "on", config.get("warm_start")
EOF
echo "warm resume replays the uninterrupted warm run exactly"

echo "report gate OK"
