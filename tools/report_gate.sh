#!/bin/sh
# End-to-end regression gate over RunReport flight-recorder artifacts.
# Registered as the `report`-labeled ctest (tests/CMakeLists.txt); also
# runnable by hand after a build:
#   tools/report_gate.sh [BUILD_DIR]   (default: build)
#
# Gates, in order:
#   1. Determinism: the CLI's learning curve must be bitwise identical at
#      --threads=1 and --threads=4 (alem_report check --exact-curve).
#   2. Quality: the fresh curve must match the committed golden baseline
#      within the default F1 tolerance (alem_report check).
#   3. Sensitivity: a baseline whose F1 is perturbed beyond tolerance
#      must make the check FAIL (guards against a gate that passes
#      everything).
#   4. Bench path: a tiny bench run with ALEM_REPORT_DIR set must emit a
#      schema-valid bench report, and `alem_report aggregate` must roll
#      it into a BENCH_alembench.json.
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Accept the build directory as absolute (ctest passes one) or relative
# to the repo root.
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac
cli="$build_dir/tools/alem_cli"
report_tool="$build_dir/tools/alem_report"
baseline="$repo_root/bench/baselines/cli_abtbuy_linear_margin.report.json"
work="$(mktemp -d "${TMPDIR:-/tmp}/alem_report_gate.XXXXXX")"
trap 'rm -rf "$work"' EXIT

for f in "$cli" "$report_tool" "$baseline"; do
  if [ ! -e "$f" ]; then
    echo "error: missing $f" >&2
    exit 1
  fi
done

run_cli() {
  threads="$1"
  out="$2"
  "$cli" run --dataset=Abt-Buy --approach=linear-margin --scale=0.25 \
      --max-labels=60 --threads="$threads" --quiet --report="$out" \
      > /dev/null
}

echo "[1/4] determinism: curve bitwise identical at 1 vs 4 threads"
run_cli 1 "$work/t1.report.json"
run_cli 4 "$work/t4.report.json"
"$report_tool" check "$work/t1.report.json" "$work/t4.report.json" \
    --exact-curve

echo "[2/4] quality: fresh run within F1 tolerance of the golden baseline"
"$report_tool" check "$baseline" "$work/t1.report.json"

echo "[3/4] sensitivity: perturbed baseline must fail the check"
python3 - "$baseline" "$work/perturbed.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
# Inflate the baseline far beyond the F1 tolerance so the fresh run
# appears to be a large regression.
report["summary"]["final_f1"] = min(1.0, report["summary"]["final_f1"] + 0.2)
report["summary"]["best_f1"] = min(1.0, report["summary"]["best_f1"] + 0.2)
with open(sys.argv[2], "w") as f:
    json.dump(report, f)
EOF
if "$report_tool" check "$work/perturbed.json" "$work/t1.report.json" \
    2> /dev/null; then
  echo "FAIL: check passed against a perturbed baseline" >&2
  exit 1
fi
echo "perturbed baseline rejected as expected"

echo "[4/4] bench path: ALEM_REPORT_DIR export + aggregation"
mkdir -p "$work/reports"
ALEM_REPORT_DIR="$work/reports" ALEM_SCALE=0.2 ALEM_MAX_LABELS=40 \
    ALEM_THREADS=2 "$build_dir/bench/bench_fig10d_blocking_time" \
    > /dev/null
python3 "$repo_root/tools/trace_summary.py" --check \
    --report "$work/reports"/*.report.json
(cd "$work" && "$report_tool" aggregate reports --out=BENCH_gate.json)
python3 - "$work/BENCH_gate.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    agg = json.load(f)
assert agg["kind"] == "aggregate", agg.get("kind")
assert len(agg["reports"]) >= 1, "aggregate rolled up no reports"
EOF

echo "report gate OK"
