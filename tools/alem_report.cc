// alem_report: inspect, compare, and gate RunReport flight-recorder
// artifacts (see src/obs/report.h for the schema).
//
// Commands:
//   alem_report show REPORT.json
//       Prints a human summary: config, F1 summary, top spans, per-region
//       latency percentiles, the thread-pool utilization section (when
//       present), the roofline profile throughput/IPC table (when
//       present), and counters.
//   alem_report compare A.json B.json
//       Side-by-side key numbers for two reports (quality + latency +
//       per-region profile throughput when both carry one).
//   alem_report diff A.json B.json
//       Lists every differing summary field, counter, and span rollup row.
//   alem_report check BASELINE.json CANDIDATE.json
//       [--f1-tol=0.02] [--latency-tol=FRAC] [--counter-tol=FRAC]
//       [--latency-p95-tol=FRAC] [--throughput-tol=FRAC] [--exact-curve]
//       The regression gate: exits nonzero (printing each violation) when
//       the candidate's F1 trails the baseline beyond --f1-tol, when a
//       run-kind candidate has zero oracle.queries /
//       selector.scored_examples, when latency/counter/throughput gates
//       (opt-in) trip, or when --exact-curve finds any curve divergence.
//       --throughput-tol gates per-region profile items/sec; it is
//       explicitly skipped (with a notice, not a silent pass) when either
//       report lacks a "profile" section. This is what the `report` ctest
//       label runs against the committed golden baseline.
//   alem_report aggregate DIR [--out=BENCH_alembench.json]
//       Rolls every *.report.json under DIR into one machine-readable
//       trajectory file (sorted by file name for determinism).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/report.h"
#include "util/flags.h"
#include "util/json.h"

namespace alem {
namespace {

using obs::RunReport;

bool Load(const std::string& path, RunReport* report) {
  std::string error;
  if (!obs::LoadReportFile(path, report, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

void PrintSummaryLine(const RunReport& report) {
  if (report.kind == "run") {
    std::printf("  %s on %s (data_seed=%llu run_seed=%llu scale=%.3g "
                "threads=%d)\n",
                report.approach.c_str(), report.dataset.c_str(),
                static_cast<unsigned long long>(report.data_seed),
                static_cast<unsigned long long>(report.run_seed),
                report.scale, report.threads);
    std::printf("  best F1 %.4f, final F1 %.4f, %zu iterations, "
                "%llu labels to converge, total wait %.3fs\n",
                report.best_f1, report.final_f1, report.curve.size(),
                static_cast<unsigned long long>(report.labels_to_converge),
                report.total_wait_seconds);
  }
  std::printf("  wall %.3fs, peak RSS %llu bytes (%.1f MiB), build %s\n",
              report.wall_seconds,
              static_cast<unsigned long long>(report.peak_rss_bytes),
              static_cast<double>(report.peak_rss_bytes) / (1024.0 * 1024.0),
              report.build.c_str());
}

void PrintLatencyTable(const RunReport& report) {
  if (report.latency.empty()) return;
  std::printf("\n  %-28s %7s %10s %10s %10s\n", "latency region", "count",
              "p50(ms)", "p95(ms)", "p99(ms)");
  for (const obs::LatencyEntry& entry : report.latency) {
    std::printf("  %-28s %7llu %10.3f %10.3f %10.3f\n", entry.name.c_str(),
                static_cast<unsigned long long>(entry.count),
                entry.p50_seconds * 1e3, entry.p95_seconds * 1e3,
                entry.p99_seconds * 1e3);
  }
}

void PrintPoolSummary(const RunReport& report) {
  if (!report.has_pool) return;
  const obs::PoolStats& pool = report.pool;
  std::printf("\n  pool: %d workers, %.0f%% utilized "
              "(busy %.3fs, idle %.3fs, queue-wait %.3fs, wall %.3fs)\n",
              pool.workers, pool.utilization * 100.0, pool.busy_seconds,
              pool.idle_seconds, pool.queue_wait_seconds,
              pool.worker_wall_seconds);
  if (pool.regions.empty()) return;
  std::printf("  %-28s %5s %7s %10s %10s %10s %6s\n", "pool region", "runs",
              "chunks", "min(ms)", "mean(ms)", "max(ms)", "util");
  for (const obs::PoolRegionStats& region : pool.regions) {
    std::printf("  %-28s %5llu %7llu %10.3f %10.3f %10.3f %5.0f%%\n",
                region.name.c_str(),
                static_cast<unsigned long long>(region.runs),
                static_cast<unsigned long long>(region.chunks),
                region.min_chunk_seconds * 1e3,
                region.mean_chunk_seconds * 1e3,
                region.max_chunk_seconds * 1e3, region.utilization * 100.0);
  }
}

// Human-scaled "1.23M" formatting for throughput columns, where raw
// items/sec spans six orders of magnitude between regions.
std::string FormatRate(double value) {
  char buf[32];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

void PrintProfileTable(const RunReport& report) {
  if (!report.has_profile) return;
  const obs::ProfileStats& profile = report.profile;
  std::printf("\n  profile (hw counters %s):\n", profile.hw.c_str());
  if (profile.regions.empty()) return;
  std::printf("  %-20s %6s %9s %11s %10s %9s %9s %5s %7s\n",
              "profile region", "spans", "time(s)", "items", "items/s",
              "GB/s", "GFLOP/s", "IPC", "miss%");
  for (const obs::ProfileRegionStats& region : profile.regions) {
    const double miss_rate =
        region.cache_refs > 0
            ? 100.0 * static_cast<double>(region.cache_misses) /
                  static_cast<double>(region.cache_refs)
            : 0.0;
    std::printf("  %-20s %6llu %9.3f %11llu %10s %9.3f %9.3f %5.2f %6.1f%%\n",
                region.name.c_str(),
                static_cast<unsigned long long>(region.spans),
                region.seconds,
                static_cast<unsigned long long>(region.items),
                FormatRate(region.items_per_sec).c_str(),
                region.bytes_per_sec / 1e9, region.flops_per_sec / 1e9,
                region.ipc, miss_rate);
  }
}

int CommandShow(const std::string& path) {
  RunReport report;
  if (!Load(path, &report)) return 1;
  std::printf("%s: %s report from %s\n", path.c_str(), report.kind.c_str(),
              report.tool.c_str());
  PrintSummaryLine(report);
  std::printf("\n  %-28s %7s %11s %11s\n", "span", "count", "total(ms)",
              "self(ms)");
  const size_t top = std::min<size_t>(report.spans.size(), 12);
  for (size_t i = 0; i < top; ++i) {
    const obs::SpanRollupEntry& span = report.spans[i];
    std::printf("  %-28s %7llu %11.3f %11.3f\n", span.name.c_str(),
                static_cast<unsigned long long>(span.count),
                span.total_seconds * 1e3, span.self_seconds * 1e3);
  }
  PrintLatencyTable(report);
  PrintPoolSummary(report);
  PrintProfileTable(report);
  std::printf("\n");
  for (const auto& [name, value] : report.counters) {
    std::printf("  %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  return 0;
}

int CommandCompare(const std::string& path_a, const std::string& path_b) {
  RunReport a, b;
  if (!Load(path_a, &a) || !Load(path_b, &b)) return 1;
  std::printf("%-24s %14s %14s %10s\n", "", "A", "B", "delta");
  auto row = [](const char* name, double va, double vb) {
    std::printf("%-24s %14.6g %14.6g %+10.4g\n", name, va, vb, vb - va);
  };
  row("best_f1", a.best_f1, b.best_f1);
  row("final_f1", a.final_f1, b.final_f1);
  row("iterations", static_cast<double>(a.curve.size()),
      static_cast<double>(b.curve.size()));
  row("labels_to_converge", static_cast<double>(a.labels_to_converge),
      static_cast<double>(b.labels_to_converge));
  row("total_wait_seconds", a.total_wait_seconds, b.total_wait_seconds);
  row("wall_seconds", a.wall_seconds, b.wall_seconds);
  row("peak_rss_mib", static_cast<double>(a.peak_rss_bytes) / 1048576.0,
      static_cast<double>(b.peak_rss_bytes) / 1048576.0);
  for (const auto& [name, value] : a.counters) {
    const uint64_t other = b.CounterOr(name, 0);
    if (value != other) {
      row(name.c_str(), static_cast<double>(value),
          static_cast<double>(other));
    }
  }
  for (const obs::LatencyEntry& entry_a : a.latency) {
    for (const obs::LatencyEntry& entry_b : b.latency) {
      if (entry_b.name != entry_a.name) continue;
      row(("p95." + entry_a.name).c_str(), entry_a.p95_seconds,
          entry_b.p95_seconds);
      break;
    }
  }
  if (a.has_pool || b.has_pool) {
    row("pool.workers", static_cast<double>(a.pool.workers),
        static_cast<double>(b.pool.workers));
    row("pool.utilization", a.pool.utilization, b.pool.utilization);
  }
  if (a.has_profile && b.has_profile) {
    for (const obs::ProfileRegionStats& region_a : a.profile.regions) {
      if (region_a.items_per_sec <= 0.0) continue;
      for (const obs::ProfileRegionStats& region_b : b.profile.regions) {
        if (region_b.name != region_a.name ||
            region_b.items_per_sec <= 0.0) {
          continue;
        }
        row(("items_per_sec." + region_a.name).c_str(),
            region_a.items_per_sec, region_b.items_per_sec);
        break;
      }
    }
  }
  std::printf("  (A = %s, B = %s)\n", path_a.c_str(), path_b.c_str());
  return 0;
}

int CommandDiff(const std::string& path_a, const std::string& path_b) {
  RunReport a, b;
  if (!Load(path_a, &a) || !Load(path_b, &b)) return 1;
  size_t differences = 0;
  auto report_diff = [&differences](const std::string& field,
                                    const std::string& va,
                                    const std::string& vb) {
    std::printf("%-32s %s -> %s\n", field.c_str(), va.c_str(), vb.c_str());
    ++differences;
  };
  auto number = [](double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  if (a.kind != b.kind) report_diff("kind", a.kind, b.kind);
  if (a.tool != b.tool) report_diff("tool", a.tool, b.tool);
  if (a.build != b.build) report_diff("build", a.build, b.build);
  if (a.dataset != b.dataset) report_diff("config.dataset", a.dataset,
                                          b.dataset);
  if (a.approach != b.approach) report_diff("config.approach", a.approach,
                                            b.approach);
  if (a.threads != b.threads) {
    report_diff("config.threads", number(a.threads), number(b.threads));
  }
  if (a.scale != b.scale) {
    report_diff("config.scale", number(a.scale), number(b.scale));
  }
  if (a.curve.size() != b.curve.size()) {
    report_diff("summary.iterations", number(a.curve.size()),
                number(b.curve.size()));
  }
  if (a.best_f1 != b.best_f1) {
    report_diff("summary.best_f1", number(a.best_f1), number(b.best_f1));
  }
  if (a.final_f1 != b.final_f1) {
    report_diff("summary.final_f1", number(a.final_f1), number(b.final_f1));
  }
  const size_t curve_common = std::min(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < curve_common; ++i) {
    if (a.curve[i].f1 != b.curve[i].f1 ||
        a.curve[i].labels_used != b.curve[i].labels_used) {
      report_diff("curve[" + std::to_string(i) + "]",
                  number(a.curve[i].labels_used) + " labels, F1 " +
                      number(a.curve[i].f1),
                  number(b.curve[i].labels_used) + " labels, F1 " +
                      number(b.curve[i].f1));
    }
  }
  for (const auto& [name, value] : a.counters) {
    const uint64_t other = b.CounterOr(name, UINT64_MAX);
    if (other == UINT64_MAX) {
      report_diff("counters." + name, std::to_string(value), "(missing)");
    } else if (other != value) {
      report_diff("counters." + name, std::to_string(value),
                  std::to_string(other));
    }
  }
  for (const auto& [name, value] : b.counters) {
    if (a.CounterOr(name, UINT64_MAX) == UINT64_MAX) {
      report_diff("counters." + name, "(missing)", std::to_string(value));
    }
  }
  std::printf("%zu difference%s\n", differences,
              differences == 1 ? "" : "s");
  return 0;
}

int CommandCheck(const FlagParser& flags, const std::string& baseline_path,
                 const std::string& candidate_path) {
  RunReport baseline, candidate;
  if (!Load(baseline_path, &baseline) || !Load(candidate_path, &candidate)) {
    return 1;
  }
  obs::ReportCheckOptions options;
  options.f1_tol = flags.GetDouble("f1-tol", options.f1_tol);
  options.latency_tol = flags.GetDouble("latency-tol", options.latency_tol);
  options.counter_tol = flags.GetDouble("counter-tol", options.counter_tol);
  options.latency_p95_tol =
      flags.GetDouble("latency-p95-tol", options.latency_p95_tol);
  options.throughput_tol =
      flags.GetDouble("throughput-tol", options.throughput_tol);
  options.exact_curve = flags.GetBool("exact-curve", false);
  // CheckReports silently skips the throughput gate when either side has
  // no profile section; surface that as an explicit notice so a gate the
  // operator asked for never looks like a pass it did not earn.
  if (options.throughput_tol >= 0.0 &&
      (!baseline.has_profile || !candidate.has_profile)) {
    std::printf("note: --throughput-tol skipped: %s no \"profile\" section "
                "(run with --profile-regions to record one)\n",
                !baseline.has_profile && !candidate.has_profile
                    ? "neither report has"
                    : (!baseline.has_profile ? "baseline report has"
                                             : "candidate report has"));
  }
  const std::vector<std::string> failures =
      obs::CheckReports(baseline, candidate, options);
  for (const std::string& failure : failures) {
    std::fprintf(stderr, "FAIL: %s\n", failure.c_str());
  }
  if (!failures.empty()) return 1;
  std::printf("report check OK (%s vs %s, f1-tol=%.4g%s)\n",
              candidate_path.c_str(), baseline_path.c_str(), options.f1_tol,
              options.exact_curve ? ", exact-curve" : "");
  return 0;
}

int CommandAggregate(const FlagParser& flags, const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 12 &&
        name.compare(name.size() - 12, 12, ".report.json") == 0) {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "cannot list %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (files.empty()) {
    std::fprintf(stderr, "no *.report.json files under %s\n", dir.c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());

  std::string out = "{\n  \"schema_version\": 1,\n  \"kind\": \"aggregate\","
                    "\n  \"tool\": \"alem_report\",\n  \"build\": ";
  AppendJsonString(&out, obs::BuildStamp());
  out.append(",\n  \"source_dir\": ");
  AppendJsonString(&out, dir);
  out.append(",\n  \"reports\": [\n");
  size_t emitted = 0;
  for (const std::string& file : files) {
    RunReport report;
    std::string error;
    if (!obs::LoadReportFile(file, &report, &error)) {
      std::fprintf(stderr, "skipping %s: %s\n", file.c_str(), error.c_str());
      continue;
    }
    if (emitted > 0) out.append(",\n");
    out.append("    {\"file\": ");
    AppendJsonString(&out, fs::path(file).filename().string());
    out.append(", \"kind\": ");
    AppendJsonString(&out, report.kind);
    out.append(", \"tool\": ");
    AppendJsonString(&out, report.tool);
    out.append(", \"build\": ");
    AppendJsonString(&out, report.build);
    if (report.kind == "run") {
      out.append(",\n     \"dataset\": ");
      AppendJsonString(&out, report.dataset);
      out.append(", \"approach\": ");
      AppendJsonString(&out, report.approach);
      out.append(", \"best_f1\": ");
      AppendJsonDouble(&out, report.best_f1);
      out.append(", \"final_f1\": ");
      AppendJsonDouble(&out, report.final_f1);
      out.append(", \"iterations\": ");
      AppendJsonUint(&out, report.curve.size());
      out.append(", \"labels_to_converge\": ");
      AppendJsonUint(&out, report.labels_to_converge);
      out.append(", \"total_wait_seconds\": ");
      AppendJsonDouble(&out, report.total_wait_seconds);
    }
    out.append(",\n     \"threads\": ");
    out.append(std::to_string(report.threads));
    out.append(", \"scale\": ");
    AppendJsonDouble(&out, report.scale);
    out.append(", \"wall_seconds\": ");
    AppendJsonDouble(&out, report.wall_seconds);
    out.append(", \"peak_rss_bytes\": ");
    AppendJsonUint(&out, report.peak_rss_bytes);
    out.append(",\n     \"counters\": {");
    bool first_counter = true;
    for (const char* name :
         {"oracle.queries", "selector.scored_examples", "blocking.pruned",
          "blocking.candidate_pairs", "sim.calls", "ml.fit_calls",
          "ml.predict_calls", "loop.iterations"}) {
      const uint64_t value = report.CounterOr(name, UINT64_MAX);
      if (value == UINT64_MAX) continue;
      if (!first_counter) out.append(", ");
      first_counter = false;
      AppendJsonString(&out, name);
      out.append(": ");
      AppendJsonUint(&out, value);
    }
    out.append("}");
    if (!report.latency.empty()) {
      out.append(",\n     \"latency\": [");
      bool first_latency = true;
      for (const obs::LatencyEntry& entry : report.latency) {
        if (!first_latency) out.append(", ");
        first_latency = false;
        out.append("{\"name\": ");
        AppendJsonString(&out, entry.name);
        out.append(", \"count\": ");
        AppendJsonUint(&out, entry.count);
        out.append(", \"p50_seconds\": ");
        AppendJsonDouble(&out, entry.p50_seconds);
        out.append(", \"p95_seconds\": ");
        AppendJsonDouble(&out, entry.p95_seconds);
        out.append(", \"p99_seconds\": ");
        AppendJsonDouble(&out, entry.p99_seconds);
        out.append("}");
      }
      out.append("]");
    }
    if (report.has_profile) {
      out.append(",\n     \"profile\": {\"hw\": ");
      AppendJsonString(&out, report.profile.hw);
      out.append(", \"regions\": [");
      bool first_region = true;
      for (const obs::ProfileRegionStats& region : report.profile.regions) {
        if (!first_region) out.append(", ");
        first_region = false;
        out.append("{\"name\": ");
        AppendJsonString(&out, region.name);
        out.append(", \"items\": ");
        AppendJsonUint(&out, region.items);
        out.append(", \"seconds\": ");
        AppendJsonDouble(&out, region.seconds);
        out.append(", \"items_per_sec\": ");
        AppendJsonDouble(&out, region.items_per_sec);
        out.append(", \"flops_per_sec\": ");
        AppendJsonDouble(&out, region.flops_per_sec);
        out.append(", \"ipc\": ");
        AppendJsonDouble(&out, region.ipc);
        out.append("}");
      }
      out.append("]}");
    }
    if (report.has_pool) {
      out.append(",\n     \"pool\": {\"workers\": ");
      out.append(std::to_string(report.pool.workers));
      out.append(", \"busy_seconds\": ");
      AppendJsonDouble(&out, report.pool.busy_seconds);
      out.append(", \"idle_seconds\": ");
      AppendJsonDouble(&out, report.pool.idle_seconds);
      out.append(", \"queue_wait_seconds\": ");
      AppendJsonDouble(&out, report.pool.queue_wait_seconds);
      out.append(", \"worker_wall_seconds\": ");
      AppendJsonDouble(&out, report.pool.worker_wall_seconds);
      out.append(", \"utilization\": ");
      AppendJsonDouble(&out, report.pool.utilization);
      out.append(", \"regions\": ");
      AppendJsonUint(&out, report.pool.regions.size());
      out.append("}");
    }
    out.append("}");
    ++emitted;
  }
  out.append("\n  ]\n}\n");
  if (emitted == 0) {
    std::fprintf(stderr, "no valid reports under %s\n", dir.c_str());
    return 1;
  }

  const std::string out_path =
      flags.GetString("out", "BENCH_alembench.json");
  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
  std::printf("aggregated %zu report%s into %s\n", emitted,
              emitted == 1 ? "" : "s", out_path.c_str());
  return 0;
}

int Usage() {
  std::printf(
      "usage: alem_report <show|compare|diff|check|aggregate> [flags]\n"
      "  alem_report show RUN.report.json\n"
      "  alem_report compare A.report.json B.report.json\n"
      "  alem_report diff A.report.json B.report.json\n"
      "  alem_report check BASELINE.json CANDIDATE.json [--f1-tol=0.02]\n"
      "      [--latency-tol=FRAC] [--counter-tol=FRAC]\n"
      "      [--latency-p95-tol=FRAC] [--throughput-tol=FRAC]\n"
      "      [--exact-curve]\n"
      "  alem_report aggregate DIR [--out=BENCH_alembench.json]\n");
  return 1;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const std::vector<std::string>& args = flags.positional();
  if (args.empty()) return Usage();
  const std::string& command = args[0];
  if (command == "show" && args.size() == 2) return CommandShow(args[1]);
  if (command == "compare" && args.size() == 3) {
    return CommandCompare(args[1], args[2]);
  }
  if (command == "diff" && args.size() == 3) {
    return CommandDiff(args[1], args[2]);
  }
  if (command == "check" && args.size() == 3) {
    return CommandCheck(flags, args[1], args[2]);
  }
  if (command == "aggregate" && args.size() == 2) {
    return CommandAggregate(flags, args[1]);
  }
  return Usage();
}

}  // namespace
}  // namespace alem

int main(int argc, char** argv) { return alem::Main(argc, argv); }
