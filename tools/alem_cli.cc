// alem_cli: command-line front end for the benchmark framework.
//
// Commands:
//   alem_cli list
//       Lists the built-in dataset profiles and approach names.
//   alem_cli kernels
//       Prints the available SIMD kernel backends and the one that is
//       active under the current --kernel-backend / ALEM_KERNEL_BACKEND
//       selection (docs/kernels.md).
//   alem_cli stats --dataset=<name> [--scale=S] [--seed=N]
//       Table-1 style statistics for one dataset.
//   alem_cli run --dataset=<name> --approach=<name>
//       [--max-labels=N] [--batch=N] [--seed-size=N] [--noise=P]
//       [--holdout] [--scale=S] [--seed=N] [--save-model=PATH] [--quiet]
//       [--threads=N] [--cache-dir=DIR] [--no-cache]
//       [--kernel-backend=auto|scalar|avx2] [--warm-start=off|on|auto]
//       [--trace=PATH.json] [--trace-jsonl=PATH.jsonl] [--metrics=PATH.csv]
//       [--report=PATH.json] [--telemetry-hz=HZ] [--profile-regions[=CSV]]
//       Runs one active-learning experiment and prints the learning curve.
//       --threads sets the worker count for committee fits / example
//       scoring / forest fits / batch predict (default: ALEM_THREADS env
//       or hardware concurrency; 1 = the serial path). Results are
//       bitwise-identical at every thread count (docs/parallelism.md).
//       --cache-dir points the persistent feature-matrix cache at DIR
//       (default: $ALEM_CACHE_DIR; unset = no cache); --no-cache disables
//       it regardless (docs/featurization.md). --kernel-backend pins the
//       SIMD kernel backend (default auto = best available; an unknown or
//       unavailable name is an error — the ALEM_KERNEL_BACKEND env knob
//       instead warns and falls back to auto). Curves are bitwise-
//       identical across backends (docs/kernels.md); the choice is
//       stamped into config.kernel_backend of the report. --warm-start
//       selects the incremental training + evaluation engine
//       (docs/training.md): off (default) refits cold and rescores the
//       full pool every iteration — the exact-replay path the golden
//       baselines pin; on warm-starts refits from the previous model and
//       keeps the progressive-F1 tally incrementally (curves gated by F1
//       tolerance, not bitwise); auto keeps cold refits but evaluates
//       incrementally (curves stay bitwise-identical to off). An unknown
//       flag value is an error — the ALEM_WARM_START env knob instead
//       warns and falls back to off. The mode is stamped into
//       config.warm_start of the report; a resumed session always
//       continues in the snapshot's mode. --trace captures every
//       pipeline span (prepare/train/evaluate/select/label/fit) as Chrome
//       trace-event JSON for chrome://tracing or Perfetto; --metrics dumps
//       the counter/gauge/histogram registry as CSV; --report writes the
//       RunReport flight-recorder JSON (config + build stamp +
//       per-iteration curve + counters + span rollup + wall/RSS totals)
//       consumed by tools/alem_report. --telemetry-hz starts the
//       background telemetry sampler at HZ samples/second (implies tracing
//       + metrics): RSS, cache traffic, predict calls, and pool occupancy
//       become Chrome-trace counter events so Perfetto shows resource
//       curves over the run. --profile-regions turns on the roofline
//       profiling layer (hardware counters via perf_event_open where the
//       kernel permits, plus explicit work counters) for the given
//       comma-separated region allowlist — an empty value selects the
//       curated hot set (sim.batch, ml.batch, selector.scoring,
//       harness.featurize, loop.evaluate); the derived throughput and IPC
//       land in the report's "profile" section (docs/observability.md).
//       Absent path flags fall back to the ALEM_TRACE_DIR /
//       ALEM_REPORT_DIR / ALEM_TELEMETRY_HZ / ALEM_PROFILE_REGIONS
//       environment knobs, same as the bench binaries (see
//       docs/observability.md).
//   alem_cli session <run|save|resume>
//       Drives a run through the step-wise LabelingSession API
//       (docs/sessions.md). `session run` takes the same flags as `run`
//       (ensemble approaches excluded) and behaves identically. `session
//       save --snapshot=PATH [--stop-after=N]` pauses after N iterations
//       and writes a checksummed ALSS snapshot — learner model, labeled
//       pool, selector/oracle RNG streams, curve, config, metric totals.
//       `session resume --snapshot=PATH` restores it in a fresh process
//       and continues; the stitched curve and report are bitwise-identical
//       to the uninterrupted run at any thread count, with the report
//       stamped config.session="resumed" / session_resumes=K. Resume also
//       accepts --stop-after=N with --snapshot-out=PATH to pause again.
//   alem_cli apply --model=PATH --dataset=<name> [--scale=S] [--seed=N]
//       [--limit=N]
//       Loads a saved forest/SVM model and prints its predicted matches on
//       a (fresh) dataset, with quality metrics against the ground truth.
//
// Examples:
//   alem_cli run --dataset=Abt-Buy --approach=trees20 --max-labels=300
//   alem_cli run --dataset=Cora --approach=linear-margin-1dim --noise=0.1

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/harness.h"
#include "core/run_report.h"
#include "kernels/backend.h"
#include "ml/metrics.h"
#include "ml/serialization.h"
#include "obs/artifacts.h"
#include "obs/obs.h"
#include "parallel/pool.h"
#include "synth/profiles.h"
#include "util/flags.h"

namespace alem {
namespace {

// Maps the shared CLI flags onto PrepareOptions; all three commands that
// prepare a dataset (stats/run/apply) accept the same provenance and cache
// knobs.
PrepareOptions PrepareOptionsFromFlags(const FlagParser& flags,
                                       const obs::ArtifactOptions& artifacts,
                                       const SynthProfile& profile) {
  PrepareOptions options;
  options.profile = profile;
  options.data_seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  options.scale = flags.GetDouble("scale", 1.0);
  options.use_cache = artifacts.use_cache;
  options.cache_dir = artifacts.cache_dir;
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  return options;
}

int CommandList() {
  std::printf("datasets:\n");
  for (const SynthProfile& profile : AllPublicProfiles()) {
    std::printf("  %s\n", profile.name.c_str());
  }
  std::printf("  SocialMedia\n");
  std::printf(
      "\napproaches:\n"
      "  trees<N>                 random forest of N trees + learner-aware "
      "QBC\n"
      "  linear-margin            linear SVM + margin selection\n"
      "  linear-margin-<K>dim     ... with K blocking dimensions\n"
      "  linear-margin-ensemble   ... with an active ensemble (tau 0.85)\n"
      "  linear-qbc<B>            linear SVM + bootstrap QBC(B)\n"
      "  nn-margin / nn-qbc<B>    neural-network variants\n"
      "  rules                    DNF rules + LFP/LFN\n"
      "  rules-qbc<B>             DNF rules + bootstrap QBC(B)\n"
      "  supervised-trees<N>      random-batch supervised baseline\n"
      "  deepmatcher              supervised deep proxy (Fig. 16)\n");
  return 0;
}

int CommandStats(const FlagParser& flags) {
  const std::string dataset_name = flags.GetString("dataset", "Abt-Buy");
  const SynthProfile profile = ProfileByName(dataset_name);
  const obs::ArtifactOptions artifacts =
      obs::ArtifactOptionsFromFlags(flags, "alem_cli_stats_" + dataset_name);
  const PreparedDataset data =
      PrepareDataset(PrepareOptionsFromFlags(flags, artifacts, profile));
  std::printf("dataset:             %s\n", data.name.c_str());
  std::printf("left records:        %zu\n", data.dataset.left.num_rows());
  std::printf("right records:       %zu\n", data.dataset.right.num_rows());
  std::printf("total pairs:         %llu\n",
              static_cast<unsigned long long>(data.dataset.TotalPairs()));
  std::printf("post-blocking pairs: %zu\n", data.pairs.size());
  std::printf("true matches:        %zu\n", data.num_matches);
  std::printf("class skew:          %.3f\n", data.class_skew);
  std::printf("float features:      %zu\n", data.float_features.dims());
  std::printf("boolean atoms:       %zu\n", data.boolean_features.dims());
  return 0;
}

int SaveModel(const RunResult& result, const std::string& path) {
  std::string blob;
  if (const auto* svm =
          dynamic_cast<const SvmLearner*>(result.final_model.get())) {
    blob = SerializeSvm(svm->model());
  } else if (const auto* forest = dynamic_cast<const ForestLearner*>(
                 result.final_model.get())) {
    blob = SerializeForest(forest->model());
  } else if (const auto* nn = dynamic_cast<const NeuralNetLearner*>(
                 result.final_model.get())) {
    blob = SerializeNeuralNet(nn->model());
  } else if (const auto* rules = dynamic_cast<const RuleLearner*>(
                 result.final_model.get())) {
    blob = SerializeDnf(rules->dnf());
  } else {
    std::fprintf(stderr, "model type does not support serialization\n");
    return 1;
  }
  if (!SaveToFile(path, blob)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("model saved to %s (%zu bytes)\n", path.c_str(), blob.size());
  return 0;
}

// Maps the shared run flags onto a RunConfig (used by `run` and the
// `session` subcommands). Returns false (error printed) on an invalid
// --warm-start value: like --kernel-backend, the explicit flag is a hard
// error while the forgiving ALEM_WARM_START environment knob warns and
// falls back to off (docs/training.md).
bool RunConfigFromFlags(const FlagParser& flags, const ApproachSpec& spec,
                        RunConfig* config) {
  config->approach = spec;
  config->max_labels = static_cast<size_t>(flags.GetInt("max-labels", 300));
  config->batch_size = static_cast<size_t>(flags.GetInt("batch", 10));
  config->seed_size = static_cast<size_t>(flags.GetInt("seed-size", 30));
  config->oracle_noise = flags.GetDouble("noise", 0.0);
  config->holdout = flags.GetBool("holdout", false);
  config->run_seed = static_cast<uint64_t>(flags.GetInt("run-seed", 1));
  if (flags.Has("warm-start")) {
    const std::string value = flags.GetString("warm-start", "off");
    if (!ParseWarmStartMode(value, &config->warm_start)) {
      std::fprintf(stderr,
                   "error: --warm-start: unknown mode '%s' (expected "
                   "off|on|auto)\n",
                   value.c_str());
      return false;
    }
  } else if (const char* env = std::getenv("ALEM_WARM_START")) {
    if (!ParseWarmStartMode(env, &config->warm_start)) {
      std::fprintf(stderr,
                   "warning: ALEM_WARM_START: unknown mode '%s'; using "
                   "off\n",
                   env);
      config->warm_start = WarmStartMode::kOff;
    }
  }
  return true;
}

void PrintRunHeader(const PreparedDataset& data, const RunConfig& config) {
  std::printf("%s on %s (%zu pairs, skew %.3f)%s",
              config.approach.DisplayName().c_str(), data.name.c_str(),
              data.pairs.size(), data.class_skew,
              config.holdout ? ", holdout 80/20" : ", progressive");
  if (parallel::NumThreads() > 1) {
    std::printf(", threads=%d", parallel::NumThreads());
  }
  std::printf("\n");
}

void PrintRunResult(const FlagParser& flags, const RunResult& result) {
  if (!flags.GetBool("quiet", false)) {
    std::printf("%8s %10s %10s %10s %10s\n", "#labels", "precision",
                "recall", "F1", "wait(s)");
    for (const IterationStats& it : result.curve) {
      std::printf("%8zu %10.3f %10.3f %10.3f %10.4f\n", it.labels_used,
                  it.metrics.precision, it.metrics.recall, it.metrics.f1,
                  it.wait_seconds);
    }
  }
  std::printf("best F1 %.3f with %zu labels; total wait %.2fs\n",
              result.best_f1, result.labels_to_converge,
              result.total_wait_seconds);
  if (result.ensemble_accepted > 0) {
    std::printf("accepted ensemble members: %zu\n", result.ensemble_accepted);
  }
}

// Trace/metrics export + report artifact + --save-model, shared by `run`
// and the session subcommands. `session`/`session_resumes` land in the
// report's config block (docs/sessions.md).
int WriteRunArtifacts(const FlagParser& flags,
                      const obs::ArtifactOptions& artifacts,
                      const PreparedDataset& data, const RunConfig& config,
                      const RunResult& result,
                      std::chrono::steady_clock::time_point wall_start,
                      const std::string& session, uint64_t session_resumes) {
  int obs_status = artifacts.ExportTraceAndMetrics();
  if (!artifacts.report_path.empty()) {
    const std::string& path = artifacts.report_path;
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    obs::RunReport report =
        BuildRunReport(data, config, result, wall_seconds, "alem_cli");
    report.session = session;
    report.session_resumes = session_resumes;
    if (obs::WriteReportJson(path, report)) {
      std::printf("report written to %s (%zu iterations)\n", path.c_str(),
                  report.curve.size());
    } else {
      std::fprintf(stderr, "failed to write report to %s\n", path.c_str());
      obs_status = 1;
    }
  }
  if (flags.Has("save-model")) {
    const int save_status =
        SaveModel(result, flags.GetString("save-model", "model.txt"));
    if (save_status != 0) return save_status;
  }
  return obs_status;
}

int CommandRun(const FlagParser& flags) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::string dataset_name = flags.GetString("dataset", "Abt-Buy");
  const std::string approach_name = flags.GetString("approach", "trees20");

  ApproachSpec spec;
  if (!ApproachFromName(approach_name, &spec)) {
    std::fprintf(stderr, "unknown approach '%s' (try: alem_cli list)\n",
                 approach_name.c_str());
    return 1;
  }
  const obs::ArtifactOptions artifacts = obs::ArtifactOptionsFromFlags(
      flags, "alem_cli_run_" + dataset_name + "_" + approach_name);
  artifacts.EnableObservability();
  const SynthProfile profile = ProfileByName(dataset_name);
  const PreparedDataset data =
      PrepareDataset(PrepareOptionsFromFlags(flags, artifacts, profile));

  RunConfig config;
  if (!RunConfigFromFlags(flags, spec, &config)) return 1;
  PrintRunHeader(data, config);
  const RunResult result = RunActiveLearning(data, config);
  PrintRunResult(flags, result);
  return WriteRunArtifacts(flags, artifacts, data, config, result, wall_start,
                           /*session=*/"fresh", /*session_resumes=*/0);
}

// `session run` drives a run through the step-wise LabelingSession API and
// `session save` additionally pauses it after --stop-after iterations,
// writing an ALSS snapshot (docs/sessions.md).
int CommandSessionStart(const FlagParser& flags, bool save) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::string dataset_name = flags.GetString("dataset", "Abt-Buy");
  const std::string approach_name = flags.GetString("approach", "trees20");

  ApproachSpec spec;
  if (!ApproachFromName(approach_name, &spec)) {
    std::fprintf(stderr, "unknown approach '%s' (try: alem_cli list)\n",
                 approach_name.c_str());
    return 1;
  }
  if (spec.active_ensemble) {
    std::fprintf(stderr, "active-ensemble approaches are not sessionable\n");
    return 1;
  }
  const obs::ArtifactOptions artifacts = obs::ArtifactOptionsFromFlags(
      flags, "alem_cli_session_" + dataset_name + "_" + approach_name);
  artifacts.EnableObservability();
  // Snapshots carry the metric totals so a resumed run's counters stitch up
  // exactly; keep them accumulating even when no --metrics path was given.
  obs::SetMetricsEnabled(true);
  const SynthProfile profile = ProfileByName(dataset_name);
  const PreparedDataset data =
      PrepareDataset(PrepareOptionsFromFlags(flags, artifacts, profile));

  RunConfig config;
  if (!RunConfigFromFlags(flags, spec, &config)) return 1;
  PrintRunHeader(data, config);

  SessionRunner runner(data, config);
  if (save) {
    const size_t stop_after =
        static_cast<size_t>(flags.GetInt("stop-after", 2));
    const std::string path = flags.GetString("snapshot", "session.alss");
    runner.Run(stop_after);
    std::string error;
    if (!runner.Save(path, &error)) {
      std::fprintf(stderr, "error: session save: %s\n", error.c_str());
      return 1;
    }
    std::printf("session saved to %s after %zu iterations (%.*s)\n",
                path.c_str(), runner.session().curve().size(),
                static_cast<int>(
                    SessionStateName(runner.session().state()).size()),
                SessionStateName(runner.session().state()).data());
    return 0;
  }

  runner.Run();
  const RunResult result = runner.TakeResult();
  PrintRunResult(flags, result);
  return WriteRunArtifacts(flags, artifacts, data, config, result, wall_start,
                           /*session=*/"fresh", /*session_resumes=*/0);
}

// `session resume` re-prepares the dataset from the snapshot's provenance,
// restores the paused session in this fresh process, and runs it to
// completion (or pauses again under --stop-after, re-saving with
// --snapshot-out). The stitched curve and report are bitwise-identical to
// the uninterrupted run's at any thread count.
int CommandSessionResume(const FlagParser& flags) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::string path = flags.GetString("snapshot", "");
  if (path.empty()) {
    std::fprintf(stderr, "session resume requires --snapshot=PATH\n");
    return 1;
  }
  SessionSnapshot snapshot;
  std::string error;
  if (!SessionSnapshot::ReadFile(path, &snapshot, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  SessionRunInfo info;
  if (!ReadSessionRunInfo(snapshot, &info, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  const obs::ArtifactOptions artifacts = obs::ArtifactOptionsFromFlags(
      flags, "alem_cli_session_resume_" + info.dataset);
  artifacts.EnableObservability();
  obs::SetMetricsEnabled(true);
  // Dataset provenance (profile, data seed, scale) comes from the snapshot;
  // execution knobs (threads, cache, kernel backend) stay CLI-controlled —
  // the determinism contract makes them free to vary across the pause.
  PrepareOptions options;
  options.profile = ProfileByName(info.dataset);
  options.data_seed = info.data_seed;
  options.scale = info.scale;
  options.use_cache = artifacts.use_cache;
  options.cache_dir = artifacts.cache_dir;
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  PreparedDataset data = PrepareDataset(options);
  // The stitched report describes the whole run, so config.cache carries
  // the original prepare's outcome, not this process's.
  data.feature_cache = info.feature_cache;

  std::unique_ptr<SessionRunner> runner =
      SessionRunner::Restore(data, info.config, snapshot, &error);
  if (runner == nullptr) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  const uint64_t resumes = runner->session().resume_count();
  std::printf("resumed %s on %s at iteration %zu (resume #%llu)\n",
              info.config.approach.DisplayName().c_str(),
              data.name.c_str(), runner->session().iteration(),
              static_cast<unsigned long long>(resumes));

  const size_t stop_after =
      static_cast<size_t>(flags.GetInt("stop-after", 0));
  runner->Run(stop_after);
  if (!runner->session().finished() && stop_after > 0) {
    const std::string out = flags.GetString("snapshot-out", path);
    if (!runner->Save(out, &error)) {
      std::fprintf(stderr, "error: session save: %s\n", error.c_str());
      return 1;
    }
    std::printf("session saved to %s after %zu iterations\n", out.c_str(),
                runner->session().curve().size());
    return 0;
  }

  const RunResult result = runner->TakeResult();
  PrintRunResult(flags, result);
  return WriteRunArtifacts(flags, artifacts, data, info.config, result,
                           wall_start, /*session=*/"resumed", resumes);
}

int CommandSession(const FlagParser& flags) {
  const std::string verb =
      flags.positional().size() > 1 ? flags.positional()[1] : "";
  if (verb == "run") return CommandSessionStart(flags, /*save=*/false);
  if (verb == "save") return CommandSessionStart(flags, /*save=*/true);
  if (verb == "resume") return CommandSessionResume(flags);
  std::fprintf(
      stderr,
      "usage: alem_cli session <run|save|resume> [flags]\n"
      "  alem_cli session run    --dataset=D --approach=A [run flags]\n"
      "  alem_cli session save   --dataset=D --approach=A "
      "--snapshot=PATH [--stop-after=N] [run flags]\n"
      "  alem_cli session resume --snapshot=PATH [--report=PATH.json]\n"
      "      [--threads=N] [--stop-after=N --snapshot-out=PATH]\n");
  return 1;
}

int CommandApply(const FlagParser& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "apply requires --model=PATH\n");
    return 1;
  }
  std::string blob;
  if (!LoadFromFile(model_path, &blob)) {
    std::fprintf(stderr, "cannot read %s\n", model_path.c_str());
    return 1;
  }
  const SynthProfile profile =
      ProfileByName(flags.GetString("dataset", "Abt-Buy"));
  const obs::ArtifactOptions artifacts =
      obs::ArtifactOptionsFromFlags(flags, "alem_cli_apply_" + profile.name);
  const PreparedDataset data =
      PrepareDataset(PrepareOptionsFromFlags(flags, artifacts, profile));

  std::vector<int> predictions;
  RandomForest forest;
  LinearSvm svm;
  if (DeserializeForest(blob, &forest)) {
    predictions = forest.PredictAll(data.float_features);
  } else if (DeserializeSvm(blob, &svm)) {
    predictions = svm.PredictAll(data.float_features);
  } else {
    std::fprintf(stderr,
                 "unrecognized model blob (apply supports forest and svm "
                 "models)\n");
    return 1;
  }

  const BinaryMetrics metrics = ComputeBinaryMetrics(predictions, data.truth);
  std::printf("%s on %s: %zu pairs, precision %.3f, recall %.3f, F1 %.3f\n",
              model_path.c_str(), data.name.c_str(), data.pairs.size(),
              metrics.precision, metrics.recall, metrics.f1);

  const size_t limit = static_cast<size_t>(flags.GetInt("limit", 20));
  size_t shown = 0;
  for (size_t i = 0; i < data.pairs.size() && shown < limit; ++i) {
    if (predictions[i] != 1) continue;
    ++shown;
    std::printf("  left[%u] <-> right[%u]%s\n", data.pairs[i].left,
                data.pairs[i].right,
                data.truth[i] == 1 ? "" : "   (false positive)");
  }
  return 0;
}

int CommandKernels() {
  std::printf("available:");
  for (const std::string_view name : kernels::AvailableBackendNames()) {
    std::printf(" %.*s", static_cast<int>(name.size()), name.data());
  }
  std::printf("\nactive: %.*s\n",
              static_cast<int>(kernels::BackendName().size()),
              kernels::BackendName().data());
  return 0;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const std::string command =
      flags.positional().empty() ? "help" : flags.positional()[0];
  // Resolve the kernel backend before any command touches similarity or
  // learner code. Unlike the forgiving ALEM_KERNEL_BACKEND environment
  // knob, an explicit flag naming an unknown or unavailable backend is a
  // hard error.
  if (flags.Has("kernel-backend")) {
    std::string error;
    if (!kernels::SetBackend(flags.GetString("kernel-backend", "auto"),
                             &error)) {
      std::fprintf(stderr, "error: --kernel-backend: %s\n", error.c_str());
      return 1;
    }
  }
  if (command == "kernels") return CommandKernels();
  if (command == "list") return CommandList();
  if (command == "stats") return CommandStats(flags);
  if (command == "run") return CommandRun(flags);
  if (command == "session") return CommandSession(flags);
  if (command == "apply") return CommandApply(flags);
  std::printf(
      "usage: alem_cli <list|stats|run|session|apply|kernels> [flags]\n"
      "  alem_cli list\n"
      "  alem_cli kernels\n"
      "  alem_cli stats --dataset=Abt-Buy\n"
      "  alem_cli run --dataset=Abt-Buy --approach=trees20 "
      "--max-labels=300\n"
      "  alem_cli run --dataset=Abt-Buy --approach=linear-margin "
      "--trace=out.json --metrics=out.csv\n"
      "  alem_cli run --dataset=Abt-Buy --approach=trees10 "
      "--report=out.report.json\n"
      "  alem_cli run --dataset=Abt-Buy --approach=linear-margin "
      "--warm-start=on\n"
      "  alem_cli session save --dataset=Abt-Buy --approach=linear-margin "
      "--snapshot=run.alss --stop-after=2\n"
      "  alem_cli session resume --snapshot=run.alss "
      "--report=out.report.json\n");
  return command == "help" ? 0 : 1;
}

}  // namespace
}  // namespace alem

int main(int argc, char** argv) { return alem::Main(argc, argv); }
