#!/usr/bin/env python3
"""Summarize and validate alembench Chrome trace files.

Default mode prints the top-N span names by *self* time (wall time minus
the wall time of nested child spans), which is the first question a trace
answers: where does an active-learning run actually spend its time?

Modes:
  trace_summary.py TRACE.json [--top N] [--metrics METRICS.csv]
      Print per-span-name aggregates (count, total, self) sorted by self
      time; when --metrics is given, append the metrics CSV contents.
  trace_summary.py --check TRACE.json --metrics METRICS.csv
      Validate the artifacts: the trace must be well-formed Chrome
      trace-event JSON whose every iteration contains train / evaluate /
      select / label spans, whose every parallel.chunk span nests (in
      time) inside a matching <region>.parallel span, whose every
      ml.batch.parallel span (the batch inference engine's fan-out)
      nests inside one of the pipeline phases that gather rows for it,
      and the metrics CSV must report nonzero selector.scored_examples
      and oracle.queries. Any telemetry counter events ("C" phase, from
      the --telemetry-hz sampler) must be well-formed; pass
      --expect-telemetry to additionally require them. Exits nonzero on
      any violation (used by ctest).
  trace_summary.py --check --report RUN.report.json
      Validate a RunReport flight-recorder artifact (schema described in
      docs/observability.md): required fields, a coherent learning curve
      for "run" reports, nonzero required counters, span rollup
      consistency, ordered percentiles in the optional latency section,
      and — when the optional pool section is present — the worker
      accounting invariant busy + idle + queue_wait ≈ worker_wall.
      Combinable with a trace check in the same call.
  trace_summary.py --run-cli PATH/TO/alem_cli --check
      Run a tiny synthetic experiment through alem_cli with --trace,
      --metrics, and --report, then validate all three artifacts. Add
      --telemetry HZ to run it at 4 threads with --telemetry-hz=HZ (pair
      with --expect-telemetry to assert the sampler produced events).

Only the Python standard library is used.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Spans that must appear inside every loop.iteration span (the pipeline
# phases the paper's latency figures are built from).
REQUIRED_PHASE_SPANS = ("loop.train", "loop.evaluate", "loop.select",
                        "loop.label")
# Metrics that a real run can never legitimately leave at zero.
REQUIRED_NONZERO_COUNTERS = ("selector.scored_examples", "oracle.queries")
# Every ml.batch fan-out is issued by a pipeline phase that gathered the
# rows first, so its aggregate span must sit inside one of these spans on
# the submitting thread (selectors score, the evaluator sweeps the eval
# split, the ensemble's precision gate trains and its coverage scan runs
# under its own span).
ML_BATCH_PARENT_SPANS = ("selector.scoring", "loop.train", "loop.evaluate",
                         "ensemble.coverage")


def load_trace(path):
    """Parses a Chrome trace file; returns its complete ("X") events."""
    with open(path, "r", encoding="utf-8") as f:
        root = json.load(f)
    if not isinstance(root, dict) or "traceEvents" not in root:
        raise ValueError(f"{path}: no traceEvents array")
    events = [e for e in root["traceEvents"] if e.get("ph") == "X"]
    for event in events:
        for field in ("name", "ts", "dur", "tid"):
            if field not in event:
                raise ValueError(f"{path}: event missing '{field}': {event}")
    return events


def load_counter_events(path):
    """Parses a Chrome trace file; returns its counter ("C") events."""
    with open(path, "r", encoding="utf-8") as f:
        root = json.load(f)
    if not isinstance(root, dict) or "traceEvents" not in root:
        raise ValueError(f"{path}: no traceEvents array")
    events = [e for e in root["traceEvents"] if e.get("ph") == "C"]
    for event in events:
        for field in ("name", "ts", "args"):
            if field not in event:
                raise ValueError(f"{path}: counter event missing "
                                 f"'{field}': {event}")
        if "value" not in event.get("args", {}):
            raise ValueError(f"{path}: counter event missing args.value: "
                             f"{event}")
    return events


def check_telemetry(trace_path, expect_telemetry):
    """Validates sampler counter events; returns failure strings.

    Counter events are emitted only by the --telemetry-hz background
    sampler, so a trace without any is valid unless --expect-telemetry
    was passed. When present, every series must be named "telemetry.*",
    carry numeric non-negative values with non-decreasing timestamps,
    and the mandatory RSS series must report a positive resident size.
    """
    try:
        events = load_counter_events(trace_path)
    except (ValueError, json.JSONDecodeError, OSError) as error:
        return [f"trace counter events unreadable: {error}"]
    if not events:
        if expect_telemetry:
            return ["--expect-telemetry: trace contains no telemetry "
                    "counter events (was --telemetry-hz passed?)"]
        return []
    failures = []
    last_ts = {}
    series = set()
    for event in events:
        name = event["name"]
        series.add(name)
        if not name.startswith("telemetry."):
            failures.append(f"counter event '{name}' is not in the "
                            "telemetry.* namespace")
            break
        value = event["args"]["value"]
        if not isinstance(value, (int, float)) or value < 0:
            failures.append(f"counter {name} has non-numeric or negative "
                            f"value {value!r}")
            break
        if event["ts"] < last_ts.get(name, 0):
            failures.append(f"counter {name} timestamps go backwards at "
                            f"ts={event['ts']}")
            break
        last_ts[name] = event["ts"]
    if "telemetry.rss_mib" not in series:
        failures.append("telemetry counter events present but the "
                        "telemetry.rss_mib series is missing")
    elif all(e["args"]["value"] <= 0 for e in events
             if e["name"] == "telemetry.rss_mib"):
        failures.append("telemetry.rss_mib never reports a positive "
                        "resident size")
    return failures


def self_times(events):
    """Returns {span name: (count, total_us, self_us)} aggregates.

    Self time is an event's duration minus the duration of the events
    nested inside it on the same thread (containment by [ts, ts+dur]).
    """
    aggregates = {}
    by_tid = {}
    for event in events:
        by_tid.setdefault(event["tid"], []).append(event)
    for tid_events in by_tid.values():
        # Parents sort before their children: earlier start, longer first.
        tid_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end_ts, name) of open ancestors.
        self_us = [e["dur"] for e in tid_events]
        for i, event in enumerate(tid_events):
            while stack and stack[-1][0] <= event["ts"]:
                stack.pop()
            if stack:
                parent_index = stack[-1][1]
                self_us[parent_index] -= event["dur"]
            stack.append((event["ts"] + event["dur"], i))
        for i, event in enumerate(tid_events):
            count, total, self_time = aggregates.get(event["name"], (0, 0.0,
                                                                     0.0))
            aggregates[event["name"]] = (count + 1, total + event["dur"],
                                         self_time + self_us[i])
    return aggregates


def print_summary(events, top):
    aggregates = self_times(events)
    rows = sorted(aggregates.items(), key=lambda kv: -kv[1][2])[:top]
    print(f"{'span':<28} {'count':>7} {'total(ms)':>11} {'self(ms)':>11}")
    for name, (count, total_us, self_us) in rows:
        print(f"{name:<28} {count:>7} {total_us / 1e3:>11.3f} "
              f"{self_us / 1e3:>11.3f}")


def read_counters(metrics_path):
    """Returns {name: value} for the counter rows of a metrics CSV."""
    counters = {}
    with open(metrics_path, "r", encoding="utf-8") as f:
        header = f.readline().strip()
        if header != "kind,name,field,value":
            raise ValueError(f"{metrics_path}: unexpected header '{header}'")
        for line in f:
            parts = line.strip().split(",")
            if len(parts) == 4 and parts[0] == "counter":
                counters[parts[1]] = int(parts[3])
    return counters


def check(trace_path, metrics_path):
    """Validates the artifacts; returns a list of failure strings."""
    failures = []
    try:
        events = load_trace(trace_path)
    except (ValueError, json.JSONDecodeError, OSError) as error:
        return [f"trace unreadable: {error}"]
    if not events:
        failures.append("trace contains no spans")

    counts = {}
    for event in events:
        counts[event["name"]] = counts.get(event["name"], 0) + 1
    iterations = counts.get("loop.iteration", 0)
    if iterations == 0:
        failures.append("no loop.iteration spans in trace")
    for name in REQUIRED_PHASE_SPANS:
        if counts.get(name, 0) < iterations:
            failures.append(
                f"{name}: {counts.get(name, 0)} spans for {iterations} "
                "iterations (every iteration must contain one)")

    # Phase spans must nest inside an iteration span on the same thread.
    iteration_windows = {}
    for event in events:
        if event["name"] == "loop.iteration":
            iteration_windows.setdefault(event["tid"], []).append(
                (event["ts"], event["ts"] + event["dur"]))
    for event in events:
        if event["name"] not in REQUIRED_PHASE_SPANS:
            continue
        windows = iteration_windows.get(event["tid"], [])
        inside = any(start <= event["ts"] and
                     event["ts"] + event["dur"] <= end + 1e-3
                     for start, end in windows)
        if not inside:
            failures.append(f"{event['name']} span at ts={event['ts']} is "
                            "not nested in any loop.iteration span")
            break

    failures.extend(check_parallel_nesting(events))
    failures.extend(check_ml_batch_nesting(events))

    if metrics_path is None:
        failures.append("--check requires --metrics")
        return failures
    try:
        counters = read_counters(metrics_path)
    except (ValueError, OSError) as error:
        failures.append(f"metrics unreadable: {error}")
        return failures
    for name in REQUIRED_NONZERO_COUNTERS:
        if counters.get(name, 0) <= 0:
            failures.append(f"counter {name} is zero or missing")
    return failures


def check_parallel_nesting(events):
    """Validates thread-pool span structure; returns failure strings.

    Every parallel.chunk span (emitted on a worker thread, with
    args.detail naming its region) must fall inside the time window of a
    "<region>.parallel" span emitted by the submitting thread, and every
    such aggregate span must contain at least one chunk. Serial traces
    (--threads=1) contain neither span, which is valid.
    """
    failures = []
    windows = {}  # region -> [(start, end)] of <region>.parallel spans.
    for event in events:
        if event["name"].endswith(".parallel"):
            region = event["name"][:-len(".parallel")]
            windows.setdefault(region, []).append(
                (event["ts"], event["ts"] + event["dur"]))
    chunks_per_region = {region: 0 for region in windows}
    for event in events:
        if event["name"] != "parallel.chunk":
            continue
        region = event.get("args", {}).get("detail", "")
        if not region:
            failures.append(f"parallel.chunk at ts={event['ts']} has no "
                            "args.detail naming its region")
            continue
        # Workers run on other threads, so containment is checked against
        # the submitting thread's window in time only (small grace for
        # clock granularity at the edges).
        inside = any(start - 1e-3 <= event["ts"] and
                     event["ts"] + event["dur"] <= end + 1e-3
                     for start, end in windows.get(region, []))
        if not inside:
            failures.append(
                f"parallel.chunk (region {region}) at ts={event['ts']} is "
                f"not inside any {region}.parallel span window")
            break
        chunks_per_region[region] += 1
    for region, count in chunks_per_region.items():
        if count == 0:
            failures.append(f"{region}.parallel spans exist but no "
                            "parallel.chunk spans name that region")
    return failures


def check_ml_batch_nesting(events):
    """Validates batch-inference span placement; returns failure strings.

    Every ml.batch.parallel span (the aggregate span `ParallelFor` emits
    on the submitting thread when the batch inference engine fans out
    with threads > 1) must nest, on the same thread, inside one of the
    ML_BATCH_PARENT_SPANS phase spans: no consumer may call a batch
    scoring API outside the phase that owns its row gathering. Serial
    traces (--threads=1) contain no ml.batch.parallel spans, which is
    valid.
    """
    failures = []
    parent_windows = {}  # tid -> [(start, end)] of allowed parent spans.
    for event in events:
        if event["name"] in ML_BATCH_PARENT_SPANS:
            parent_windows.setdefault(event["tid"], []).append(
                (event["ts"], event["ts"] + event["dur"]))
    for event in events:
        if event["name"] != "ml.batch.parallel":
            continue
        windows = parent_windows.get(event["tid"], [])
        inside = any(start - 1e-3 <= event["ts"] and
                     event["ts"] + event["dur"] <= end + 1e-3
                     for start, end in windows)
        if not inside:
            failures.append(
                f"ml.batch.parallel span at ts={event['ts']} is not nested "
                "in any of " + "/".join(ML_BATCH_PARENT_SPANS) +
                " on its thread")
            break
    return failures


# Fields every report must carry, and the extra ones "run" reports add.
REPORT_REQUIRED_FIELDS = ("schema_version", "kind", "tool", "build",
                          "config", "counters", "gauges", "spans", "process")
REPORT_CONFIG_FIELDS = ("dataset", "approach", "data_seed", "run_seed",
                        "scale", "threads", "seed_size", "batch_size",
                        "max_labels", "oracle_noise", "holdout", "cache")
REPORT_CURVE_FIELDS = ("iteration", "labels_used", "precision", "recall",
                       "f1", "train_seconds", "select_seconds",
                       "wait_seconds")
REPORT_SUMMARY_FIELDS = ("iterations", "best_f1", "final_f1",
                         "labels_to_converge", "total_wait_seconds")


def check_report(report_path):
    """Validates a RunReport JSON artifact; returns failure strings."""
    try:
        with open(report_path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (ValueError, OSError) as error:
        return [f"report unreadable: {error}"]
    if not isinstance(report, dict):
        return ["report root is not a JSON object"]

    failures = []
    for field in REPORT_REQUIRED_FIELDS:
        if field not in report:
            failures.append(f"report missing required field '{field}'")
    if failures:
        return failures
    if report["schema_version"] != 1:
        failures.append(
            f"unsupported schema_version {report['schema_version']}")
    kind = report["kind"]
    if kind not in ("run", "bench"):
        failures.append(f"unknown report kind '{kind}'")
    for field in REPORT_CONFIG_FIELDS:
        if field not in report["config"]:
            failures.append(f"report config missing '{field}'")
    for field in ("wall_seconds", "peak_rss_bytes"):
        if field not in report["process"]:
            failures.append(f"report process missing '{field}'")

    for span in report["spans"]:
        for field in ("name", "count", "total_seconds", "self_seconds"):
            if field not in span:
                failures.append(f"span rollup entry missing '{field}': "
                                f"{span}")
                break
        else:
            if span["self_seconds"] > span["total_seconds"] + 1e-9:
                failures.append(f"span {span['name']}: self time "
                                f"{span['self_seconds']} exceeds total "
                                f"{span['total_seconds']}")

    failures.extend(check_report_cache(report, kind))
    failures.extend(check_report_latency(report))
    failures.extend(check_report_pool(report))
    failures.extend(check_report_profile(report))
    failures.extend(check_report_warm_start(report, kind))

    if kind == "run":
        curve = report.get("curve", [])
        if not curve:
            failures.append("run report has an empty learning curve")
        previous_labels = -1
        for i, point in enumerate(curve):
            for field in REPORT_CURVE_FIELDS:
                if field not in point:
                    failures.append(f"curve[{i}] missing '{field}'")
                    break
            labels = point.get("labels_used", 0)
            if labels < previous_labels:
                failures.append(f"curve[{i}]: labels_used {labels} "
                                "decreases (curve must be monotone)")
            previous_labels = labels
            if not 0.0 <= point.get("f1", -1.0) <= 1.0:
                failures.append(f"curve[{i}]: F1 {point.get('f1')} outside "
                                "[0, 1]")
        summary = report.get("summary", {})
        for field in REPORT_SUMMARY_FIELDS:
            if field not in summary:
                failures.append(f"report summary missing '{field}'")
        if curve and summary and "final_f1" in summary:
            if abs(summary["final_f1"] - curve[-1].get("f1", -1.0)) > 1e-12:
                failures.append("summary.final_f1 does not match the last "
                                "curve point")
        for name in REQUIRED_NONZERO_COUNTERS:
            if report["counters"].get(name, 0) <= 0:
                failures.append(f"report counter {name} is zero or missing")
    return failures


def check_report_cache(report, kind):
    """Validates feature-cache counters against spans and provenance.

    Whenever the persistent feature cache was touched (any
    featurize.cache.* counter present), the report must also carry the
    harness.featurize.cache span, writes can never outnumber misses
    (every write follows a miss), and a "run" report's config.cache
    provenance must agree with the counters. A resumed session's report
    (config.session == "resumed") is exempt from the span requirement:
    its counters stitch in the saving process's totals while its span
    rollup covers only the resuming process (docs/sessions.md).
    """
    failures = []
    counters = report.get("counters", {})
    hits = counters.get("featurize.cache.hit", 0)
    misses = counters.get("featurize.cache.miss", 0)
    writes = counters.get("featurize.cache.write", 0)
    if hits + misses + writes == 0:
        return failures
    resumed = report.get("config", {}).get("session") == "resumed"
    span_names = {span.get("name") for span in report.get("spans", [])}
    if "harness.featurize.cache" not in span_names and not resumed:
        failures.append("featurize.cache.* counters present but no "
                        "harness.featurize.cache span recorded")
    if writes > misses:
        failures.append(f"featurize.cache.write {writes} exceeds "
                        f"featurize.cache.miss {misses} (every write "
                        "follows a miss)")
    if kind == "run":
        cache = report.get("config", {}).get("cache", "off")
        if cache == "off":
            failures.append("featurize.cache.* counters present but "
                            "config.cache is 'off'")
        elif cache == "hit" and hits == 0:
            failures.append("config.cache is 'hit' but "
                            "featurize.cache.hit is zero")
        elif cache == "miss" and misses == 0:
            failures.append("config.cache is 'miss' but "
                            "featurize.cache.miss is zero")
    return failures


def check_report_warm_start(report, kind):
    """Validates the incremental-engine counters (docs/training.md).

    The fit-path split must tally: every Learner::Fit lands in exactly one
    of ml.warm_fits / ml.cold_fits, so their sum equals ml.fit_calls
    whenever the split counters are present. config.warm_start (optional
    on old reports) must be a known mode; with the engine off no warm fit
    and no incremental rescore may be recorded, and with it on/auto a
    "run" report must have rescored something, bounded per evaluation by
    the pool size: each of the curve's evaluations rescores at most the
    full pool once, plus at most one full-rescore audit, so the counter
    can never exceed 2 * iterations * eval.pool_rows.
    """
    failures = []
    counters = report.get("counters", {})
    warm = counters.get("ml.warm_fits", 0)
    cold = counters.get("ml.cold_fits", 0)
    fits = counters.get("ml.fit_calls", 0)
    if ("ml.warm_fits" in counters or "ml.cold_fits" in counters) \
            and warm + cold != fits:
        failures.append(f"ml.warm_fits {warm} + ml.cold_fits {cold} != "
                        f"ml.fit_calls {fits}")
    mode = report.get("config", {}).get("warm_start", "off")
    if mode not in ("off", "on", "auto"):
        failures.append(f"config.warm_start is '{mode}' (expected "
                        "off/on/auto)")
        return failures
    rescored = counters.get("eval.rows_rescored", 0)
    if mode == "off":
        if warm > 0:
            failures.append(f"config.warm_start is 'off' but ml.warm_fits "
                            f"is {warm}")
        if rescored > 0:
            failures.append("config.warm_start is 'off' but "
                            f"eval.rows_rescored is {rescored}")
        return failures
    if mode == "auto" and warm > 0:
        failures.append(f"config.warm_start is 'auto' (cold refits) but "
                        f"ml.warm_fits is {warm}")
    if kind == "run":
        if rescored <= 0:
            failures.append(f"config.warm_start is '{mode}' but "
                            "eval.rows_rescored is zero or missing")
        pool_rows = report.get("gauges", {}).get("eval.pool_rows", 0)
        iterations = len(report.get("curve", []))
        if pool_rows <= 0:
            failures.append(f"config.warm_start is '{mode}' but the "
                            "eval.pool_rows gauge is zero or missing")
        elif rescored > 2 * iterations * pool_rows:
            failures.append(f"eval.rows_rescored {rescored} exceeds "
                            f"2 * {iterations} iterations * "
                            f"{int(pool_rows)} pool rows")
    return failures


def check_report_latency(report):
    """Validates the optional per-region latency percentile section.

    Reports written before the section existed (or with metrics off)
    simply omit it, which is valid. When present, every entry must name
    a region with at least one observation and ordered percentiles
    0 <= p50 <= p95 <= p99.
    """
    latency = report.get("latency")
    if latency is None:
        return []
    if not isinstance(latency, list):
        return ["report latency section is not an array"]
    failures = []
    for entry in latency:
        for field in ("name", "count", "sum_seconds", "p50_seconds",
                      "p95_seconds", "p99_seconds"):
            if field not in entry:
                failures.append(f"latency entry missing '{field}': {entry}")
                break
        else:
            name = entry["name"]
            if entry["count"] <= 0:
                failures.append(f"latency {name}: count {entry['count']} "
                                "must be positive (empty regions are "
                                "omitted)")
            p50, p95, p99 = (entry["p50_seconds"], entry["p95_seconds"],
                             entry["p99_seconds"])
            if not 0.0 <= p50 <= p95 <= p99:
                failures.append(f"latency {name}: percentiles not ordered "
                                f"(p50={p50} p95={p95} p99={p99})")
    return failures


def check_report_pool(report):
    """Validates the optional thread-pool utilization section.

    Serial runs (--threads=1) never engage the pool and omit the
    section, which is valid. When present, the per-worker accounting
    must tile worker wall time: |busy + idle + queue_wait - worker_wall|
    within max(1% of wall, 10 ms), and every region's chunk-duration
    stats must satisfy min <= mean <= max with a sane utilization.
    """
    pool = report.get("pool")
    if pool is None:
        return []
    failures = []
    for field in ("workers", "busy_seconds", "idle_seconds",
                  "queue_wait_seconds", "worker_wall_seconds",
                  "utilization", "regions"):
        if field not in pool:
            failures.append(f"pool section missing '{field}'")
    if failures:
        return failures
    if pool["workers"] < 1:
        failures.append(f"pool workers {pool['workers']} must be >= 1")
    wall = pool["worker_wall_seconds"]
    accounted = (pool["busy_seconds"] + pool["idle_seconds"] +
                 pool["queue_wait_seconds"])
    if abs(accounted - wall) > max(0.01 * wall, 0.01):
        failures.append(f"pool accounting gap: busy+idle+queue_wait "
                        f"{accounted:.6f}s vs worker_wall {wall:.6f}s "
                        "(must agree within 1% or 10ms)")
    if not 0.0 <= pool["utilization"] <= 1.0 + 1e-9:
        failures.append(f"pool utilization {pool['utilization']} outside "
                        "[0, 1]")
    for region in pool["regions"]:
        for field in ("name", "runs", "chunks", "min_chunk_seconds",
                      "max_chunk_seconds", "mean_chunk_seconds",
                      "utilization"):
            if field not in region:
                failures.append(f"pool region missing '{field}': {region}")
                break
        else:
            name = region["name"]
            if region["chunks"] <= 0 or region["runs"] <= 0:
                failures.append(f"pool region {name}: runs/chunks must be "
                                "positive")
            lo, mean, hi = (region["min_chunk_seconds"],
                            region["mean_chunk_seconds"],
                            region["max_chunk_seconds"])
            if not 0.0 <= lo <= mean + 1e-12 or not mean <= hi + 1e-12:
                failures.append(f"pool region {name}: chunk stats not "
                                f"ordered (min={lo} mean={mean} max={hi})")
            if not 0.0 <= region["utilization"] <= 1.0 + 1e-9:
                failures.append(f"pool region {name}: utilization "
                                f"{region['utilization']} outside [0, 1]")
    return failures


PROFILE_REGION_FIELDS = (
    "name", "spans", "seconds", "items", "bytes", "flops", "cycles",
    "instructions", "cache_refs", "cache_misses", "branch_misses",
    "items_per_sec", "bytes_per_sec", "flops_per_sec", "ipc")

PROFILE_COUNTER_FIELDS = (
    "spans", "seconds", "items", "bytes", "flops", "cycles",
    "instructions", "cache_refs", "cache_misses", "branch_misses",
    "items_per_sec", "bytes_per_sec", "flops_per_sec", "ipc")


def check_report_profile(report):
    """Validates the optional roofline profile section.

    Unprofiled runs omit the section, which is valid. When present:
    profile.hw must be "available" or "unavailable", every counter must
    be non-negative, IPC must be a sane 0 < ipc < 16 whenever cycles
    were counted, and each derived throughput must equal work / seconds
    within 1% (the section is self-consistent by construction; drift
    means a stamping bug).
    """
    profile = report.get("profile")
    if profile is None:
        return []
    if not isinstance(profile, dict):
        return ["report profile section is not an object"]
    failures = []
    hw = profile.get("hw")
    if hw not in ("available", "unavailable"):
        failures.append(f"profile.hw '{hw}' must be 'available' or "
                        "'unavailable'")
    regions = profile.get("regions")
    if not isinstance(regions, list):
        return failures + ["profile.regions missing or not an array"]
    for region in regions:
        missing = [f for f in PROFILE_REGION_FIELDS if f not in region]
        if missing:
            failures.append(f"profile region missing {missing}: {region}")
            continue
        name = region["name"]
        for field in PROFILE_COUNTER_FIELDS:
            if region[field] < 0:
                failures.append(f"profile {name}: {field} "
                                f"{region[field]} is negative")
        cycles = region["cycles"]
        if hw == "unavailable" and cycles != 0:
            failures.append(f"profile {name}: cycles {cycles} nonzero "
                            "with hw unavailable")
        if cycles > 0:
            ipc = region["instructions"] / cycles
            if not 0.0 < ipc < 16.0:
                failures.append(f"profile {name}: IPC {ipc:.3f} outside "
                                "(0, 16)")
            if abs(region["ipc"] - ipc) > 0.01 * ipc:
                failures.append(f"profile {name}: stamped ipc "
                                f"{region['ipc']} != instructions/cycles "
                                f"{ipc:.6f}")
        elif region["ipc"] != 0:
            failures.append(f"profile {name}: ipc {region['ipc']} nonzero "
                            "with zero cycles")
        seconds = region["seconds"]
        for work, rate in (("items", "items_per_sec"),
                           ("bytes", "bytes_per_sec"),
                           ("flops", "flops_per_sec")):
            stamped = region[rate]
            if seconds > 0:
                derived = region[work] / seconds
                if abs(stamped - derived) > 0.01 * max(derived, 1e-12):
                    failures.append(f"profile {name}: {rate} {stamped} != "
                                    f"{work}/seconds {derived:.6g} "
                                    "(within 1%)")
            elif stamped != 0:
                failures.append(f"profile {name}: {rate} {stamped} nonzero "
                                "with zero seconds")
        if region["cache_misses"] > region["cache_refs"]:
            failures.append(f"profile {name}: cache_misses "
                            f"{region['cache_misses']} exceed cache_refs "
                            f"{region['cache_refs']}")
    return failures


def run_cli(cli_path, out_dir, telemetry_hz=0.0):
    """Runs a tiny traced experiment; returns its artifact paths.

    With telemetry_hz > 0 the run also starts the background telemetry
    sampler and uses 4 threads so the pool-occupancy series and the
    report's pool section have something to observe.
    """
    trace_path = os.path.join(out_dir, "smoke.trace.json")
    metrics_path = os.path.join(out_dir, "smoke.metrics.csv")
    report_path = os.path.join(out_dir, "smoke.report.json")
    cache_dir = os.path.join(out_dir, "cache")
    os.makedirs(cache_dir, exist_ok=True)
    command = [
        cli_path, "run", "--dataset=Abt-Buy", "--approach=linear-margin",
        "--scale=0.25", "--max-labels=60", "--quiet",
        f"--cache-dir={cache_dir}",  # Cold miss: exercises the cache checks.
        f"--trace={trace_path}", f"--metrics={metrics_path}",
        f"--report={report_path}"
    ]
    if telemetry_hz > 0:
        command += [f"--telemetry-hz={telemetry_hz}", "--threads=4"]
    print("+", " ".join(command))
    subprocess.run(command, check=True)
    return trace_path, metrics_path, report_path


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="Chrome trace JSON file")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the self-time summary")
    parser.add_argument("--metrics", help="metrics CSV to read")
    parser.add_argument("--report", help="RunReport JSON to validate")
    parser.add_argument("--check", action="store_true",
                        help="validate instead of summarize; nonzero exit "
                             "on violations")
    parser.add_argument("--run-cli", metavar="ALEM_CLI",
                        help="run a tiny traced experiment through this "
                             "alem_cli binary first")
    parser.add_argument("--telemetry", type=float, default=0.0,
                        metavar="HZ",
                        help="with --run-cli: sample telemetry at HZ and "
                             "use 4 threads")
    parser.add_argument("--expect-telemetry", action="store_true",
                        help="with --check: fail unless the trace contains "
                             "telemetry counter events")
    args = parser.parse_args()

    if args.run_cli:
        with tempfile.TemporaryDirectory(prefix="alem_trace_") as out_dir:
            trace_path, metrics_path, report_path = run_cli(
                args.run_cli, out_dir, telemetry_hz=args.telemetry)
            return finish(args, trace_path, metrics_path, report_path)
    if not args.trace and not (args.check and args.report):
        parser.error("a trace file (or --run-cli, or --check --report) is "
                     "required")
    return finish(args, args.trace, args.metrics, args.report)


def finish(args, trace_path, metrics_path, report_path):
    if args.check:
        failures = []
        checked = []
        if trace_path:
            failures.extend(check(trace_path, metrics_path))
            failures.extend(check_telemetry(trace_path,
                                            args.expect_telemetry))
            checked.extend([trace_path, metrics_path])
        if report_path:
            failures.extend(check_report(report_path))
            checked.append(report_path)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("artifacts OK (" + ", ".join(str(p) for p in checked) + ")")
        return 0
    print_summary(load_trace(trace_path), args.top)
    if metrics_path:
        with open(metrics_path, "r", encoding="utf-8") as f:
            print()
            print(f.read(), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
