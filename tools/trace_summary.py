#!/usr/bin/env python3
"""Summarize and validate alembench Chrome trace files.

Default mode prints the top-N span names by *self* time (wall time minus
the wall time of nested child spans), which is the first question a trace
answers: where does an active-learning run actually spend its time?

Modes:
  trace_summary.py TRACE.json [--top N] [--metrics METRICS.csv]
      Print per-span-name aggregates (count, total, self) sorted by self
      time; when --metrics is given, append the metrics CSV contents.
  trace_summary.py --check TRACE.json --metrics METRICS.csv
      Validate the artifacts: the trace must be well-formed Chrome
      trace-event JSON whose every iteration contains train / evaluate /
      select / label spans, and the metrics CSV must report nonzero
      selector.scored_examples and oracle.queries. Exits nonzero on any
      violation (used by ctest).
  trace_summary.py --run-cli PATH/TO/alem_cli --check
      Run a tiny synthetic experiment through alem_cli with --trace and
      --metrics, then validate the emitted artifacts as above.

Only the Python standard library is used.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Spans that must appear inside every loop.iteration span (the pipeline
# phases the paper's latency figures are built from).
REQUIRED_PHASE_SPANS = ("loop.train", "loop.evaluate", "loop.select",
                        "loop.label")
# Metrics that a real run can never legitimately leave at zero.
REQUIRED_NONZERO_COUNTERS = ("selector.scored_examples", "oracle.queries")


def load_trace(path):
    """Parses a Chrome trace file; returns its complete ("X") events."""
    with open(path, "r", encoding="utf-8") as f:
        root = json.load(f)
    if not isinstance(root, dict) or "traceEvents" not in root:
        raise ValueError(f"{path}: no traceEvents array")
    events = [e for e in root["traceEvents"] if e.get("ph") == "X"]
    for event in events:
        for field in ("name", "ts", "dur", "tid"):
            if field not in event:
                raise ValueError(f"{path}: event missing '{field}': {event}")
    return events


def self_times(events):
    """Returns {span name: (count, total_us, self_us)} aggregates.

    Self time is an event's duration minus the duration of the events
    nested inside it on the same thread (containment by [ts, ts+dur]).
    """
    aggregates = {}
    by_tid = {}
    for event in events:
        by_tid.setdefault(event["tid"], []).append(event)
    for tid_events in by_tid.values():
        # Parents sort before their children: earlier start, longer first.
        tid_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end_ts, name) of open ancestors.
        self_us = [e["dur"] for e in tid_events]
        for i, event in enumerate(tid_events):
            while stack and stack[-1][0] <= event["ts"]:
                stack.pop()
            if stack:
                parent_index = stack[-1][1]
                self_us[parent_index] -= event["dur"]
            stack.append((event["ts"] + event["dur"], i))
        for i, event in enumerate(tid_events):
            count, total, self_time = aggregates.get(event["name"], (0, 0.0,
                                                                     0.0))
            aggregates[event["name"]] = (count + 1, total + event["dur"],
                                         self_time + self_us[i])
    return aggregates


def print_summary(events, top):
    aggregates = self_times(events)
    rows = sorted(aggregates.items(), key=lambda kv: -kv[1][2])[:top]
    print(f"{'span':<28} {'count':>7} {'total(ms)':>11} {'self(ms)':>11}")
    for name, (count, total_us, self_us) in rows:
        print(f"{name:<28} {count:>7} {total_us / 1e3:>11.3f} "
              f"{self_us / 1e3:>11.3f}")


def read_counters(metrics_path):
    """Returns {name: value} for the counter rows of a metrics CSV."""
    counters = {}
    with open(metrics_path, "r", encoding="utf-8") as f:
        header = f.readline().strip()
        if header != "kind,name,field,value":
            raise ValueError(f"{metrics_path}: unexpected header '{header}'")
        for line in f:
            parts = line.strip().split(",")
            if len(parts) == 4 and parts[0] == "counter":
                counters[parts[1]] = int(parts[3])
    return counters


def check(trace_path, metrics_path):
    """Validates the artifacts; returns a list of failure strings."""
    failures = []
    try:
        events = load_trace(trace_path)
    except (ValueError, json.JSONDecodeError, OSError) as error:
        return [f"trace unreadable: {error}"]
    if not events:
        failures.append("trace contains no spans")

    counts = {}
    for event in events:
        counts[event["name"]] = counts.get(event["name"], 0) + 1
    iterations = counts.get("loop.iteration", 0)
    if iterations == 0:
        failures.append("no loop.iteration spans in trace")
    for name in REQUIRED_PHASE_SPANS:
        if counts.get(name, 0) < iterations:
            failures.append(
                f"{name}: {counts.get(name, 0)} spans for {iterations} "
                "iterations (every iteration must contain one)")

    # Phase spans must nest inside an iteration span on the same thread.
    iteration_windows = {}
    for event in events:
        if event["name"] == "loop.iteration":
            iteration_windows.setdefault(event["tid"], []).append(
                (event["ts"], event["ts"] + event["dur"]))
    for event in events:
        if event["name"] not in REQUIRED_PHASE_SPANS:
            continue
        windows = iteration_windows.get(event["tid"], [])
        inside = any(start <= event["ts"] and
                     event["ts"] + event["dur"] <= end + 1e-3
                     for start, end in windows)
        if not inside:
            failures.append(f"{event['name']} span at ts={event['ts']} is "
                            "not nested in any loop.iteration span")
            break

    if metrics_path is None:
        failures.append("--check requires --metrics")
        return failures
    try:
        counters = read_counters(metrics_path)
    except (ValueError, OSError) as error:
        failures.append(f"metrics unreadable: {error}")
        return failures
    for name in REQUIRED_NONZERO_COUNTERS:
        if counters.get(name, 0) <= 0:
            failures.append(f"counter {name} is zero or missing")
    return failures


def run_cli(cli_path, out_dir):
    """Runs a tiny traced experiment; returns (trace_path, metrics_path)."""
    trace_path = os.path.join(out_dir, "smoke.trace.json")
    metrics_path = os.path.join(out_dir, "smoke.metrics.csv")
    command = [
        cli_path, "run", "--dataset=Abt-Buy", "--approach=linear-margin",
        "--scale=0.25", "--max-labels=60", "--quiet",
        f"--trace={trace_path}", f"--metrics={metrics_path}"
    ]
    print("+", " ".join(command))
    subprocess.run(command, check=True)
    return trace_path, metrics_path


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="Chrome trace JSON file")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the self-time summary")
    parser.add_argument("--metrics", help="metrics CSV to read")
    parser.add_argument("--check", action="store_true",
                        help="validate instead of summarize; nonzero exit "
                             "on violations")
    parser.add_argument("--run-cli", metavar="ALEM_CLI",
                        help="run a tiny traced experiment through this "
                             "alem_cli binary first")
    args = parser.parse_args()

    if args.run_cli:
        with tempfile.TemporaryDirectory(prefix="alem_trace_") as out_dir:
            trace_path, metrics_path = run_cli(args.run_cli, out_dir)
            return finish(args, trace_path, metrics_path)
    if not args.trace:
        parser.error("a trace file (or --run-cli) is required")
    return finish(args, args.trace, args.metrics)


def finish(args, trace_path, metrics_path):
    if args.check:
        failures = check(trace_path, metrics_path)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("trace + metrics OK "
              f"({trace_path}, {metrics_path})")
        return 0
    print_summary(load_trace(trace_path), args.top)
    if metrics_path:
        with open(metrics_path, "r", encoding="utf-8") as f:
            print()
            print(f.read(), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
