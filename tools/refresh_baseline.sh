#!/bin/sh
# Regenerates the golden RunReport baseline that the `report` ctest label
# gates against (bench/baselines/cli_abtbuy_linear_margin.report.json).
#
# Run this after a change that *intentionally* moves the learning curve
# (new featurizer, different seeding, selector fixes) so the regression
# gate tracks the new expected quality. Gratuitous refreshes defeat the
# gate — diff the old and new baseline first:
#   build/tools/alem_report diff bench/baselines/... NEW.report.json
#
# Usage: tools/refresh_baseline.sh [BUILD_DIR]   (default: build)
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac
cli="$build_dir/tools/alem_cli"
baseline="$repo_root/bench/baselines/cli_abtbuy_linear_margin.report.json"

if [ ! -x "$cli" ]; then
  echo "error: $cli not built (cmake --build $build_dir first)" >&2
  exit 1
fi

mkdir -p "$(dirname "$baseline")"
# The exact workload the report_gate test replays: small enough to run in
# seconds, deterministic at any thread count.
"$cli" run --dataset=Abt-Buy --approach=linear-margin --scale=0.25 \
    --max-labels=60 --threads=1 --quiet --report="$baseline"
echo "baseline refreshed: $baseline"
echo "review with: $build_dir/tools/alem_report show $baseline"
