#!/bin/sh
# Regenerates the golden RunReport baselines that the `report` ctest label
# gates against (bench/baselines/cli_abtbuy_*.report.json): one per golden
# workload — linear-margin (margin selection), trees5 (forest + QBC), and
# linear-qbc4 (bootstrap committee).
#
# Run this after a change that *intentionally* moves a learning curve or a
# pipeline counter (new featurizer, different seeding, selector fixes) so
# the regression gate tracks the new expected behavior. Gratuitous
# refreshes defeat the gate — diff old vs new first:
#   build/tools/alem_report diff bench/baselines/... NEW.report.json
#
# Each baseline is produced against a fresh, empty feature-cache directory,
# so its featurize.cache.* counters record the canonical cold run
# (miss=1, write=1, hit=0); report_gate.sh replays the same cold setup and
# compares counters exactly.
#
# Baselines are generated with --kernel-backend=scalar so they pin the
# portable reference path regardless of the refreshing host's CPU; the
# SIMD backends are required to reproduce these curves bitwise anyway
# (docs/kernels.md), and report_gate.sh stage 7 enforces that. They are
# also pinned to --warm-start=off (cold refits + full rescores, immune to
# any ALEM_WARM_START in the refreshing environment): the baselines define
# the exact-replay contract, and the incremental engine is gated against
# them by report_gate.sh stage 10 (docs/training.md).
#
# Usage: tools/refresh_baseline.sh [BUILD_DIR]   (default: build)
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac
cli="$build_dir/tools/alem_cli"
baseline_dir="$repo_root/bench/baselines"
work="$(mktemp -d "${TMPDIR:-/tmp}/alem_refresh.XXXXXX")"
trap 'rm -rf "$work"' EXIT

if [ ! -x "$cli" ]; then
  echo "error: $cli not built (cmake --build $build_dir first)" >&2
  exit 1
fi

mkdir -p "$baseline_dir"
# The exact workloads the report_gate test replays: small enough to run in
# seconds, deterministic at any thread count.
for approach in linear-margin trees5 linear-qbc4; do
  name="$(printf '%s' "$approach" | tr '-' '_')"
  baseline="$baseline_dir/cli_abtbuy_$name.report.json"
  mkdir -p "$work/cache_$name"
  "$cli" run --dataset=Abt-Buy --approach="$approach" --scale=0.25 \
      --max-labels=60 --threads=1 --quiet --kernel-backend=scalar \
      --warm-start=off --cache-dir="$work/cache_$name" --report="$baseline"
  echo "baseline refreshed: $baseline"
done
echo "review with: $build_dir/tools/alem_report show <baseline>"
