#!/usr/bin/env python3
"""Plot the CSV series exported by the benchmark harnesses.

Usage:
    ALEM_CSV_DIR=/tmp/alem_csv ./build/bench/bench_fig12_classifier_comparison
    python3 plots/plot_results.py /tmp/alem_csv          # one PNG per CSV
    python3 plots/plot_results.py /tmp/alem_csv --show   # interactive

Requires matplotlib (optional dependency; the C++ harnesses are fully
functional without it — they print the same series as text tables).
"""

import csv
import os
import sys


def load_series(path):
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    header, body = rows[0], rows[1:]
    xs = [int(row[0]) for row in body]
    series = {}
    for column, name in enumerate(header[1:], start=1):
        points = [
            (x, float(row[column]))
            for x, row in zip(xs, body)
            if row[column] != ""
        ]
        if points:
            series[name] = points
    return series


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    directory = sys.argv[1]
    show = "--show" in sys.argv

    try:
        import matplotlib

        if not show:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; the text tables in the bench "
              "output contain the same data")
        return 1

    for file_name in sorted(os.listdir(directory)):
        if not file_name.endswith(".csv"):
            continue
        path = os.path.join(directory, file_name)
        series = load_series(path)
        if not series:
            continue
        plt.figure(figsize=(6, 4))
        for name, points in series.items():
            xs, ys = zip(*points)
            plt.plot(xs, ys, marker="o", markersize=3, label=name)
        plt.xlabel("#labeled examples")
        plt.ylabel("value")
        plt.title(file_name[:-4].replace("_", " ").strip())
        plt.legend(fontsize=8)
        plt.grid(alpha=0.3)
        plt.tight_layout()
        if show:
            plt.show()
        else:
            out = path[:-4] + ".png"
            plt.savefig(out, dpi=120)
            print(f"wrote {out}")
        plt.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
